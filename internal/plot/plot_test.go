package plot

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func chart() *BarChart {
	return &BarChart{
		Title:       "Fig 9 — interesting inputs discarded",
		YLabel:      "% of interesting arrivals",
		Categories:  []string{"more-crowded", "crowded", "less-crowded"},
		ValueSuffix: "%",
		Series: []Series{
			{Name: "noadapt", Values: []float64{50.7, 50.0, 42.7}},
			{Name: "alwaysdegrade", Values: []float64{22.1, 22.7, 22.1}},
			{Name: "quetzal", Values: []float64{16.9, 15.4, 16.1}},
		},
	}
}

func TestValidate(t *testing.T) {
	if err := chart().Validate(); err != nil {
		t.Fatalf("valid chart rejected: %v", err)
	}
	c := chart()
	c.Categories = nil
	if err := c.Validate(); err == nil {
		t.Error("accepted no categories")
	}
	c = chart()
	c.Series = nil
	if err := c.Validate(); err == nil {
		t.Error("accepted no series")
	}
	c = chart()
	c.Series[0].Values = c.Series[0].Values[:2]
	if err := c.Validate(); err == nil {
		t.Error("accepted mismatched value count")
	}
	c = chart()
	c.Series[0].Values[0] = math.NaN()
	if err := c.Validate(); err == nil {
		t.Error("accepted NaN")
	}
	c = chart()
	c.Series[0].Values[0] = -1
	if err := c.Validate(); err == nil {
		t.Error("accepted negative value")
	}
	c = chart()
	for i := 0; i < 9; i++ {
		c.Series = append(c.Series, Series{Name: "x", Values: []float64{1, 2, 3}})
	}
	if err := c.Validate(); err == nil {
		t.Error("accepted more series than fixed categorical slots")
	}
}

func TestWriteSVGStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := chart().WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	fragments := []string{
		"<svg", "</svg>",
		"Fig 9 — interesting inputs discarded",
		"% of interesting arrivals",
		"more-crowded", "quetzal",
		seriesColors[0], seriesColors[1], seriesColors[2],
		"<title>crowded — quetzal: 15.4%</title>",
		`fill="` + surface + `"`,
	}
	for _, f := range fragments {
		if !strings.Contains(out, f) {
			t.Errorf("SVG missing %q", f)
		}
	}
	// One bar path + one direct label per (category, series).
	if got := strings.Count(out, "<path"); got != 9 {
		t.Errorf("bar paths = %d, want 9", got)
	}
	// Legend present for 3 series.
	if got := strings.Count(out, `<rect`); got < 4 { // surface + 3 legend chips
		t.Errorf("rects = %d, want surface + legend chips", got)
	}
	// Direct labels use ink, not series color.
	if strings.Contains(out, `<text`) && strings.Contains(out, `fill="`+seriesColors[0]+`" text-anchor="middle"`) {
		t.Error("direct labels use series color instead of ink")
	}
}

func TestSingleSeriesHasNoLegend(t *testing.T) {
	c := &BarChart{
		Title:      "solo",
		Categories: []string{"a", "b"},
		Series:     []Series{{Name: "only", Values: []float64{1, 2}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	// Exactly one rect: the surface (no legend chips).
	if got := strings.Count(buf.String(), "<rect"); got != 1 {
		t.Errorf("rects = %d, want 1 (surface only)", got)
	}
}

func TestEscaping(t *testing.T) {
	c := &BarChart{
		Title:      `a <b> & "c"`,
		Categories: []string{"x<y"},
		Series:     []Series{{Name: "s&t", Values: []float64{3}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "<b>") || strings.Contains(out, "s&t<") {
		t.Error("unescaped markup in SVG text")
	}
	if !strings.Contains(out, "a &lt;b&gt; &amp; &quot;c&quot;") {
		t.Errorf("title not escaped: %s", out[:200])
	}
}

func TestNiceCeil(t *testing.T) {
	cases := []struct{ in, want float64 }{
		{0, 1}, {0.7, 1}, {1, 1}, {1.3, 2}, {4.2, 5}, {7, 10}, {34, 50}, {99, 100}, {101, 200},
	}
	for _, c := range cases {
		if got := niceCeil(c.in); got != c.want {
			t.Errorf("niceCeil(%g) = %g, want %g", c.in, got, c.want)
		}
	}
}

func TestZeroValuesRenderable(t *testing.T) {
	c := &BarChart{
		Title:      "zeros",
		Categories: []string{"a"},
		Series:     []Series{{Name: "s", Values: []float64{0}}},
	}
	var buf bytes.Buffer
	if err := c.WriteSVG(&buf); err != nil {
		t.Fatal(err)
	}
}
