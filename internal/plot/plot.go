// Package plot renders the experiment harness's results as standalone SVG
// grouped-bar charts, so `cmd/experiments -svg` produces figures you can
// open next to the paper's.
//
// Visual rules follow a validated chart style: categorical series colors
// assigned in a fixed, CVD-safe order (never cycled or re-ranked); thin
// bars with rounded data-ends anchored to the baseline and a 2 px surface
// gap between adjacent bars; recessive grid and axes; text in ink colors,
// never the series color; a legend whenever there are two or more series
// plus direct value labels on every bar (the relief rule for the
// lower-contrast slots); native SVG <title> tooltips per mark.
package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// The categorical palette, light mode, in its fixed CVD-validated order
// (worst adjacent ΔE 24.2; slots 2/3/7 rely on the direct labels below for
// contrast relief).
var seriesColors = []string{
	"#2a78d6", // blue
	"#1baf7a", // aqua
	"#eda100", // yellow
	"#008300", // green
	"#4a3aa7", // violet
	"#e34948", // red
	"#e87ba4", // magenta
	"#eb6834", // orange
}

// Ink and surface tokens.
const (
	surface       = "#fcfcfb"
	textPrimary   = "#0b0b0b"
	textSecondary = "#52514e"
	gridStroke    = "#e4e3df"
)

// Series is one named sequence of values, one per category.
type Series struct {
	Name   string
	Values []float64
}

// BarChart is a grouped bar chart: categories on the x axis, one bar per
// series within each category.
type BarChart struct {
	Title      string
	YLabel     string
	Categories []string
	Series     []Series
	// ValueSuffix is appended to direct labels (e.g. "%").
	ValueSuffix string
}

// Validate checks the chart is renderable.
func (c *BarChart) Validate() error {
	if len(c.Categories) == 0 {
		return fmt.Errorf("plot: no categories")
	}
	if len(c.Series) == 0 {
		return fmt.Errorf("plot: no series")
	}
	if len(c.Series) > len(seriesColors) {
		return fmt.Errorf("plot: %d series exceeds the %d fixed categorical slots; fold extras into 'other'",
			len(c.Series), len(seriesColors))
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.Categories) {
			return fmt.Errorf("plot: series %q has %d values for %d categories",
				s.Name, len(s.Values), len(c.Categories))
		}
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("plot: series %q contains non-renderable value %g", s.Name, v)
			}
		}
	}
	return nil
}

// Geometry constants (pixels).
const (
	chartW      = 760.0
	chartH      = 420.0
	marginL     = 64.0
	marginR     = 24.0
	marginT     = 56.0
	marginB     = 88.0 // room for category labels + legend row
	barGap      = 2.0  // surface gap between adjacent bars
	groupGapFr  = 0.35 // fraction of a group's width left as spacing
	cornerR     = 3.0  // rounded data-end radius
	maxBarWidth = 46.0
)

// WriteSVG renders the chart.
func (c *BarChart) WriteSVG(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	maxV := 0.0
	for _, s := range c.Series {
		for _, v := range s.Values {
			if v > maxV {
				maxV = v
			}
		}
	}
	if maxV == 0 {
		maxV = 1
	}
	top := niceCeil(maxV)

	plotW := chartW - marginL - marginR
	plotH := chartH - marginT - marginB
	y := func(v float64) float64 { return marginT + plotH*(1-v/top) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="system-ui, sans-serif">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(&b, `<rect width="%g" height="%g" fill="%s"/>`+"\n", chartW, chartH, surface)
	fmt.Fprintf(&b, `<text x="%g" y="28" font-size="16" font-weight="600" fill="%s">%s</text>`+"\n",
		marginL, textPrimary, esc(c.Title))
	if c.YLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11" fill="%s">%s</text>`+"\n",
			marginL, marginT-10, textSecondary, esc(c.YLabel))
	}

	// Recessive grid + y ticks (4 divisions).
	for i := 0; i <= 4; i++ {
		v := top * float64(i) / 4
		yy := y(v)
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1"/>`+"\n",
			marginL, yy, chartW-marginR, yy, gridStroke)
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11" fill="%s" text-anchor="end">%s</text>`+"\n",
			marginL-8, yy+4, textSecondary, fmtVal(v, c.ValueSuffix))
	}

	// Bars.
	nCat, nSer := len(c.Categories), len(c.Series)
	groupW := plotW / float64(nCat)
	innerW := groupW * (1 - groupGapFr)
	barW := (innerW - barGap*float64(nSer-1)) / float64(nSer)
	if barW > maxBarWidth {
		barW = maxBarWidth
	}
	usedW := barW*float64(nSer) + barGap*float64(nSer-1)
	baseline := y(0)
	for ci, cat := range c.Categories {
		gx := marginL + groupW*float64(ci) + (groupW-usedW)/2
		for si, s := range c.Series {
			v := s.Values[ci]
			x := gx + float64(si)*(barW+barGap)
			yTop := y(v)
			h := baseline - yTop
			fmt.Fprintf(&b, `<path d="%s" fill="%s">`, barPath(x, yTop, barW, h), seriesColors[si])
			fmt.Fprintf(&b, `<title>%s — %s: %s</title></path>`+"\n",
				esc(cat), esc(s.Name), fmtVal(v, c.ValueSuffix))
			// Direct value label (ink, not series color): the relief rule.
			fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="10" fill="%s" text-anchor="middle">%s</text>`+"\n",
				round(x+barW/2), round(yTop-4), textPrimary, fmtVal(v, c.ValueSuffix))
		}
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="12" fill="%s" text-anchor="middle">%s</text>`+"\n",
			round(marginL+groupW*(float64(ci)+0.5)), round(baseline+20), textPrimary, esc(cat))
	}

	// Legend row (only with ≥ 2 series; one series is named by the title).
	if nSer >= 2 {
		lx := marginL
		ly := chartH - 28.0
		for si, s := range c.Series {
			fmt.Fprintf(&b, `<rect x="%g" y="%g" width="12" height="12" rx="2" fill="%s"/>`+"\n",
				lx, ly-10, seriesColors[si])
			fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="12" fill="%s">%s</text>`+"\n",
				lx+17, ly, textPrimary, esc(s.Name))
			lx += 17 + 8.5*float64(len(s.Name)) + 24
		}
	}

	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// barPath draws a bar anchored to the baseline with only the data-end
// (top) corners rounded.
func barPath(x, yTop, w, h float64) string {
	r := cornerR
	if h < r {
		r = h
	}
	if w < 2*r {
		r = w / 2
	}
	return fmt.Sprintf("M%g %g v%g q0 %g %g %g h%g q%g 0 %g %g v%g z",
		round(x), round(yTop+h), round(-(h - r)), round(-r), round(r), round(-r),
		round(w-2*r), round(r), round(r), round(r), round(h-r))
}

func round(v float64) float64 { return math.Round(v*100) / 100 }

// niceCeil rounds up to a pleasant axis maximum (1/2/5 × 10^k).
func niceCeil(v float64) float64 {
	if v <= 0 {
		return 1
	}
	mag := math.Pow(10, math.Floor(math.Log10(v)))
	for _, m := range []float64{1, 2, 5, 10} {
		if v <= m*mag {
			return m * mag
		}
	}
	return 10 * mag
}

func fmtVal(v float64, suffix string) string {
	s := ""
	switch {
	case v >= 100:
		s = fmt.Sprintf("%.0f", v)
	case v >= 10:
		s = fmt.Sprintf("%.1f", v)
	default:
		s = fmt.Sprintf("%.2g", v)
	}
	return s + suffix
}

func esc(s string) string {
	r := strings.NewReplacer("&", "&amp;", "<", "&lt;", ">", "&gt;", `"`, "&quot;")
	return r.Replace(s)
}
