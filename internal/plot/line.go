package plot

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// LineChart renders one or two time series as 2px lines over a shared time
// axis — used for device timelines (input power, buffer occupancy, store
// energy). Each series gets its own normalised scale printed in its label
// (series of different magnitude must not share a second y-axis, so values
// are indexed to their own maximum instead).
type LineChart struct {
	Title  string
	XLabel string
	// X holds the shared time coordinates (seconds), ascending.
	X []float64
	// Series are drawn in the fixed categorical order.
	Series []Series
}

// Validate checks the chart is renderable.
func (c *LineChart) Validate() error {
	if len(c.X) < 2 {
		return fmt.Errorf("plot: line chart needs at least 2 points, got %d", len(c.X))
	}
	if len(c.Series) == 0 || len(c.Series) > len(seriesColors) {
		return fmt.Errorf("plot: line chart needs 1–%d series, got %d", len(seriesColors), len(c.Series))
	}
	for i := 1; i < len(c.X); i++ {
		if c.X[i] < c.X[i-1] {
			return fmt.Errorf("plot: X not ascending at %d", i)
		}
	}
	for _, s := range c.Series {
		if len(s.Values) != len(c.X) {
			return fmt.Errorf("plot: series %q has %d values for %d xs", s.Name, len(s.Values), len(c.X))
		}
		for _, v := range s.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("plot: series %q contains non-finite value", s.Name)
			}
		}
	}
	return nil
}

// WriteSVG renders the chart. Each series is normalised to its own maximum
// (the per-series max appears in the legend label), which sidesteps the
// dual-axis trap while keeping shapes comparable.
func (c *LineChart) WriteSVG(w io.Writer) error {
	if err := c.Validate(); err != nil {
		return err
	}
	plotW := chartW - marginL - marginR
	plotH := chartH - marginT - marginB
	x0, x1 := c.X[0], c.X[len(c.X)-1]
	if x1 == x0 {
		x1 = x0 + 1
	}
	xpos := func(t float64) float64 { return marginL + plotW*(t-x0)/(x1-x0) }

	var b strings.Builder
	fmt.Fprintf(&b, `<svg xmlns="http://www.w3.org/2000/svg" width="%g" height="%g" viewBox="0 0 %g %g" font-family="system-ui, sans-serif">`+"\n",
		chartW, chartH, chartW, chartH)
	fmt.Fprintf(&b, `<rect width="%g" height="%g" fill="%s"/>`+"\n", chartW, chartH, surface)
	fmt.Fprintf(&b, `<text x="%g" y="28" font-size="16" font-weight="600" fill="%s">%s</text>`+"\n",
		marginL, textPrimary, esc(c.Title))

	// Recessive horizontal grid at quarters of the normalised range.
	for i := 0; i <= 4; i++ {
		yy := marginT + plotH*float64(i)/4
		fmt.Fprintf(&b, `<line x1="%g" y1="%g" x2="%g" y2="%g" stroke="%s" stroke-width="1"/>`+"\n",
			marginL, round(yy), chartW-marginR, round(yy), gridStroke)
	}
	// X ticks: five time labels.
	for i := 0; i <= 4; i++ {
		t := x0 + (x1-x0)*float64(i)/4
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11" fill="%s" text-anchor="middle">%s</text>`+"\n",
			round(xpos(t)), round(marginT+plotH+18), textSecondary, fmtVal(t, "s"))
	}
	if c.XLabel != "" {
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="11" fill="%s">%s</text>`+"\n",
			marginL, marginT-10, textSecondary, esc(c.XLabel))
	}

	// Lines, each normalised to its own max.
	for si, s := range c.Series {
		max := 0.0
		for _, v := range s.Values {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			max = 1
		}
		var d strings.Builder
		for i, v := range s.Values {
			cmd := "L"
			if i == 0 {
				cmd = "M"
			}
			yy := marginT + plotH*(1-v/max)
			fmt.Fprintf(&d, "%s%g %g", cmd, round(xpos(c.X[i])), round(yy))
		}
		fmt.Fprintf(&b, `<path d="%s" fill="none" stroke="%s" stroke-width="2" stroke-linejoin="round">`,
			d.String(), seriesColors[si])
		fmt.Fprintf(&b, `<title>%s (max %s)</title></path>`+"\n", esc(s.Name), fmtVal(max, ""))

		// Legend entry with the per-series scale.
		lx := marginL + float64(si)*220
		ly := chartH - 28.0
		fmt.Fprintf(&b, `<rect x="%g" y="%g" width="12" height="12" rx="2" fill="%s"/>`+"\n",
			lx, ly-10, seriesColors[si])
		fmt.Fprintf(&b, `<text x="%g" y="%g" font-size="12" fill="%s">%s (max %s)</text>`+"\n",
			lx+17, ly, textPrimary, esc(s.Name), fmtVal(max, ""))
	}
	b.WriteString("</svg>\n")
	_, err := io.WriteString(w, b.String())
	return err
}
