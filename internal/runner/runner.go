// Package runner is the concurrency substrate for experiment sweeps: a
// key-addressed, single-flight, memoizing worker-pool executor. Callers
// submit comparable keys; the pool executes the run function at most once
// per key on a bounded set of workers, joins concurrent requests for the
// same key onto the in-flight execution, and serves later requests from
// the memo. A Ledger summarizes executed runs vs cache hits and wall time,
// so sweeps can report how much work de-duplication saved.
//
// The pool adds no ordering of its own: with a deterministic run function
// (all simulator RNG is seeded per run), results are identical at any
// worker count, and Collect returns them in key order regardless of
// completion order.
package runner

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"quetzal/internal/obs"
)

// Func computes the value for one key. It must be safe for concurrent use
// and should honor ctx cancellation for long runs.
type Func[K comparable, V any] func(ctx context.Context, key K) (V, error)

// ErrSaturated is returned (wrapped, with the key) by Do when the pool's
// admission queue is full: Config.MaxWaiters executions are already waiting
// for a worker slot and the call would need a new execution. Joins of
// in-flight runs and memo hits are never saturated — they consume no slot.
var ErrSaturated = errors.New("admission queue saturated")

// Event describes one resolved Do call, for progress reporting.
type Event[K comparable] struct {
	Key      K
	Cached   bool          // served from the memo or joined an in-flight run
	Err      error         // the run's (wrapped) error, if any
	Duration time.Duration // execution wall time; 0 for cache hits
	// QueueWait is how long the call waited for a worker slot; 0 for
	// cache hits and joined calls.
	QueueWait time.Duration
	// Ledger counters after this event, for "N done" style progress lines.
	// Snapshot and emit are atomic: across the serialized OnEvent stream
	// Executed+CacheHits increases by exactly one per event.
	Executed  int
	CacheHits int
}

// Config tunes a Pool.
type Config[K comparable] struct {
	// Workers bounds concurrent executions; 0 → runtime.NumCPU().
	Workers int
	// RunTimeout bounds each individual execution; 0 → no per-run limit.
	RunTimeout time.Duration
	// MaxWaiters bounds the admission queue: when > 0 and that many
	// executions are already waiting for a worker slot, a Do that would
	// start a new execution fails fast with ErrSaturated instead of
	// blocking. Cache hits and joins of in-flight runs are unaffected, so
	// a saturated pool still coalesces duplicates. 0 → unbounded waiting.
	MaxWaiters int
	// OnEvent, when set, is called after every resolved Do. Calls are
	// serialized, so the callback may write to a shared sink unguarded.
	OnEvent func(Event[K])
}

// Ledger summarizes the work a pool has done.
type Ledger struct {
	Executed  int           // runs actually executed
	CacheHits int           // requests served without executing
	Errors    int           // executions that returned an error
	RunTime   time.Duration // summed execution wall time across workers
	QueueWait time.Duration // summed time executed runs waited for a slot
	Elapsed   time.Duration // first submission to latest completion
	// Latency holds the distribution of per-run execution wall times in
	// seconds (obs.LatencyBuckets layout); snapshots from Pool.Ledger are
	// independent clones. Nil until the pool has run something.
	Latency *obs.Histogram
	// ItemsDone/ItemsTotal report batch-item progress (e.g. fleet devices
	// completed / total) when the pool is driven by RunBatch or a caller
	// that publishes item counts; both zero otherwise.
	ItemsDone  int
	ItemsTotal int
}

// String renders the ledger as a one-line summary.
func (l Ledger) String() string {
	return fmt.Sprintf("%d runs, %d cache hits, %d errors, %v wall (%v cpu)",
		l.Executed, l.CacheHits, l.Errors,
		l.Elapsed.Round(time.Millisecond), l.RunTime.Round(time.Millisecond))
}

// Pool executes runs at most once per key. Construct with New; all methods
// are safe for concurrent use.
type Pool[K comparable, V any] struct {
	fn  Func[K, V]
	cfg Config[K]
	sem chan struct{}
	lat *obs.Histogram // per-run execution latency, seconds

	// evMu serializes ledger-snapshot + OnEvent pairs; it is always taken
	// before mu, so each emitted Event carries the counters as of exactly
	// its own completion (the stream is monotonic, +1 per event).
	evMu sync.Mutex

	mu         sync.Mutex
	calls      map[K]*call[V]
	ledger     Ledger
	first      time.Time // first submission
	last       time.Time // latest completion
	waiting    int       // executions queued for a worker slot
	running    int       // executions holding a worker slot
	itemsDone  int       // batch items folded so far (see AddItemsDone)
	itemsTotal int
}

// Stats is an instantaneous occupancy snapshot: how many executions are
// queued for a worker slot and how many hold one. Services use it as the
// N in Little's-Law admission decisions. ItemsDone/ItemsTotal mirror the
// Ledger's batch-item progress for live "N of M devices" reporting.
type Stats struct {
	Waiting    int
	Running    int
	ItemsDone  int
	ItemsTotal int
}

// call is one single-flight execution slot; val/err are written exactly
// once before done is closed.
type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// New builds a pool around fn.
func New[K comparable, V any](fn Func[K, V], cfg Config[K]) *Pool[K, V] {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.NumCPU()
	}
	return &Pool[K, V]{
		fn:    fn,
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		calls: make(map[K]*call[V]),
		lat:   obs.NewHistogram(obs.LatencyBuckets()),
	}
}

// Workers returns the pool's concurrency bound.
func (p *Pool[K, V]) Workers() int { return p.cfg.Workers }

// Stats returns the pool's instantaneous queue/worker occupancy.
func (p *Pool[K, V]) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return Stats{Waiting: p.waiting, Running: p.running,
		ItemsDone: p.itemsDone, ItemsTotal: p.itemsTotal}
}

// SetItemsTotal declares how many batch items the pool's keys cover, for
// progress reporting (RunBatch calls this with the device count).
func (p *Pool[K, V]) SetItemsTotal(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.itemsTotal = n
}

// AddItemsDone advances the batch-item progress counter by n.
func (p *Pool[K, V]) AddItemsDone(n int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.itemsDone += n
}

// Forget drops the memoized value for key if its execution has completed,
// freeing the memory it pins. In-flight executions are left alone. Batch
// folds call this after consuming a shard's value so a bounded window of
// shard results is resident at any time, regardless of batch size.
func (p *Pool[K, V]) Forget(key K) {
	p.mu.Lock()
	defer p.mu.Unlock()
	c, ok := p.calls[key]
	if !ok {
		return
	}
	select {
	case <-c.done:
		delete(p.calls, key)
	default:
	}
}

// Known reports whether key is already memoized or in flight: a Do for it
// would be served without a new execution (and therefore cannot be shed by
// the MaxWaiters bound).
func (p *Pool[K, V]) Known(key K) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.calls[key]
	return ok
}

// Do returns the value for key, executing fn at most once per key: the
// first caller runs it on a worker slot, concurrent callers for the same
// key join the in-flight execution, and later callers get the memoized
// result (errors included — a failed run is not retried). Cancellation is
// the exception: a run that dies of its caller's context is forgotten, so
// a later Do with a live context executes it afresh.
func (p *Pool[K, V]) Do(ctx context.Context, key K) (V, error) {
	var zero V
	p.mu.Lock()
	if p.first.IsZero() {
		p.first = time.Now()
	}
	if c, ok := p.calls[key]; ok {
		p.mu.Unlock()
		select {
		case <-c.done:
			p.noteHit(Event[K]{Key: key, Cached: true, Err: c.err})
			return c.val, c.err
		case <-ctx.Done():
			return zero, fmt.Errorf("runner: %v: %w", key, context.Cause(ctx))
		}
	}
	if p.cfg.MaxWaiters > 0 && p.waiting >= p.cfg.MaxWaiters {
		p.mu.Unlock()
		return zero, fmt.Errorf("runner: %v: %w", key, ErrSaturated)
	}
	c := &call[V]{done: make(chan struct{})}
	p.calls[key] = c
	p.waiting++
	p.mu.Unlock()

	// Acquire a worker slot (bounded concurrency). A caller deadline is
	// honored while queued: a request that cannot get a slot in time dies
	// here, without ever executing.
	enqueued := time.Now()
	select {
	case p.sem <- struct{}{}:
	case <-ctx.Done():
		p.mu.Lock()
		p.waiting--
		p.mu.Unlock()
		c.err = fmt.Errorf("runner: %v: %w", key, context.Cause(ctx))
		p.abandon(key, c)
		return zero, c.err
	}
	qwait := time.Since(enqueued)
	p.mu.Lock()
	p.waiting--
	p.running++
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		p.running--
		p.mu.Unlock()
		<-p.sem
	}()

	runCtx := ctx
	if p.cfg.RunTimeout > 0 {
		var cancel context.CancelFunc
		runCtx, cancel = context.WithTimeout(ctx, p.cfg.RunTimeout)
		defer cancel()
	}
	start := time.Now()
	v, err := p.fn(runCtx, key)
	took := time.Since(start)
	if err != nil {
		err = fmt.Errorf("runner: %v: %w", key, err)
	}
	if err != nil && ctx.Err() != nil &&
		(errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) {
		// The caller's own context died mid-run: the failure is a property
		// of this call, not of the key — don't poison the memo.
		c.err = err
		p.abandon(key, c)
		return zero, err
	}
	c.val, c.err = v, err
	p.lat.Observe(took.Seconds())

	p.evMu.Lock()
	p.mu.Lock()
	p.ledger.Executed++
	if err != nil {
		p.ledger.Errors++
	}
	p.ledger.RunTime += took
	p.ledger.QueueWait += qwait
	p.last = time.Now()
	ev := Event[K]{Key: key, Err: err, Duration: took, QueueWait: qwait,
		Executed: p.ledger.Executed, CacheHits: p.ledger.CacheHits}
	p.mu.Unlock()
	close(c.done)
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(ev)
	}
	p.evMu.Unlock()
	return v, err
}

// Collect resolves all keys (submitted concurrently, bounded by Workers)
// and returns their values in key order. When runs fail, the error of the
// earliest failed key is returned, so the reported failure is
// deterministic regardless of completion order.
func (p *Pool[K, V]) Collect(ctx context.Context, keys []K) ([]V, error) {
	vals := make([]V, len(keys))
	errs := make([]error, len(keys))
	var wg sync.WaitGroup
	for i, k := range keys {
		wg.Add(1)
		go func(i int, k K) {
			defer wg.Done()
			vals[i], errs[i] = p.Do(ctx, k)
		}(i, k)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return vals, err
		}
	}
	return vals, nil
}

// Ledger returns a snapshot of the pool's work summary. The Latency
// histogram is an independent clone; mutating it does not affect the pool.
func (p *Pool[K, V]) Ledger() Ledger {
	p.mu.Lock()
	defer p.mu.Unlock()
	l := p.ledger
	switch {
	case p.first.IsZero():
	case p.last.Before(p.first):
		l.Elapsed = time.Since(p.first)
	default:
		l.Elapsed = p.last.Sub(p.first)
	}
	l.Latency = p.lat.Clone()
	l.ItemsDone = p.itemsDone
	l.ItemsTotal = p.itemsTotal
	return l
}

// noteHit records a cache hit and fires the progress callback. Counter
// snapshot and emit share the evMu critical section (lock order evMu→mu,
// matching Do) so concurrent completions cannot reorder between snapshot
// and callback.
func (p *Pool[K, V]) noteHit(ev Event[K]) {
	p.evMu.Lock()
	p.mu.Lock()
	p.ledger.CacheHits++
	p.last = time.Now()
	ev.Executed = p.ledger.Executed
	ev.CacheHits = p.ledger.CacheHits
	p.mu.Unlock()
	if p.cfg.OnEvent != nil {
		p.cfg.OnEvent(ev)
	}
	p.evMu.Unlock()
}

// abandon unregisters a call that died of cancellation, releasing any
// joined waiters with c.err (already set) and leaving the key free to be
// re-executed by a later caller.
func (p *Pool[K, V]) abandon(key K, c *call[V]) {
	p.mu.Lock()
	delete(p.calls, key)
	p.mu.Unlock()
	close(c.done)
}
