package runner

import (
	"context"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"
)

// TestEventStreamMonotonic is ISSUE 4's ledger-timing fix pin. Before the
// fix, the counter snapshot (under p.mu) and the OnEvent emit (under
// p.evMu) were separate critical sections, so two completions could
// snapshot in one order and emit in the other — the serialized event
// stream then showed Executed+CacheHits jumping backwards. Snapshot and
// emit now share the evMu section: across the stream the total must
// increase by exactly one per event, and per-event timing fields must be
// non-negative.
func TestEventStreamMonotonic(t *testing.T) {
	type seen struct {
		executed, hits int
		dur, qwait     time.Duration
	}
	var (
		mu     sync.Mutex
		stream []seen
	)
	// The reorder needs completions racing between snapshot and emit;
	// force real scheduler parallelism even on single-CPU CI runners, and
	// repeat the whole wave several times — the window is a few
	// instructions wide, so one wave only catches it sometimes.
	defer runtime.GOMAXPROCS(runtime.GOMAXPROCS(8))
	rng := rand.New(rand.NewSource(7))
	for wave := 0; wave < 10; wave++ {
		stream = stream[:0]
		p := New(func(_ context.Context, k int) (int, error) {
			return k, nil // instant completions maximize snapshot/emit contention
		}, Config[int]{Workers: 16, OnEvent: func(ev Event[int]) {
			// OnEvent is serialized; the extra mutex only pairs it with the
			// final read below.
			mu.Lock()
			stream = append(stream, seen{ev.Executed, ev.CacheHits, ev.Duration, ev.QueueWait})
			mu.Unlock()
		}})

		// Many near-simultaneous requests with heavy key duplication, so
		// cache hits and executions complete back-to-back and interleave.
		keys := make([]int, 3000)
		for i := range keys {
			keys[i] = rng.Intn(150)
		}
		if _, err := p.Collect(context.Background(), keys); err != nil {
			t.Fatal(err)
		}

		mu.Lock()
		if len(stream) != len(keys) {
			t.Fatalf("event stream has %d entries, want %d", len(stream), len(keys))
		}
		for i, ev := range stream {
			if total := ev.executed + ev.hits; total != i+1 {
				t.Fatalf("event %d: executed %d + hits %d = %d, want %d (stream not monotonic)",
					i, ev.executed, ev.hits, total, i+1)
			}
			if ev.dur < 0 || ev.qwait < 0 {
				t.Fatalf("event %d: negative timing (dur %v, queue wait %v)", i, ev.dur, ev.qwait)
			}
		}
		mu.Unlock()

		l := p.Ledger()
		if l.Executed+l.CacheHits != len(keys) {
			t.Errorf("ledger totals %d+%d, want %d", l.Executed, l.CacheHits, len(keys))
		}
		if l.Latency == nil || l.Latency.Count() != uint64(l.Executed) {
			t.Errorf("latency histogram count = %v, want %d executions", l.Latency, l.Executed)
		}
		if l.RunTime < 0 || l.QueueWait < 0 {
			t.Errorf("ledger timing negative: run %v, queue wait %v", l.RunTime, l.QueueWait)
		}
	}
}

// TestLedgerLatencySnapshot: the histogram returned by Ledger is a clone —
// observing into it must not corrupt the pool's own distribution.
func TestLedgerLatencySnapshot(t *testing.T) {
	p := New(func(_ context.Context, k int) (int, error) { return k, nil },
		Config[int]{Workers: 2})
	if _, err := p.Collect(context.Background(), []int{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	snap := p.Ledger().Latency
	if snap.Count() != 3 {
		t.Fatalf("latency count = %d, want 3", snap.Count())
	}
	snap.Observe(1e6)
	if got := p.Ledger().Latency.Count(); got != 3 {
		t.Errorf("pool latency count = %d after mutating the snapshot, want 3", got)
	}
}
