package runner

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestSaturationFastFail pins the admission-queue bound: with one worker
// busy and MaxWaiters executions queued, a Do needing a new execution fails
// immediately with ErrSaturated — but joins of the in-flight key and memo
// hits still succeed, so coalescing survives saturation.
func TestSaturationFastFail(t *testing.T) {
	release := make(chan struct{})
	p := New(func(ctx context.Context, key string) (string, error) {
		if key != "warm" {
			<-release
		}
		return "v:" + key, nil
	}, Config[string]{Workers: 1, MaxWaiters: 1})

	// Memoize one key while the pool is idle.
	if _, err := p.Do(context.Background(), "warm"); err != nil {
		t.Fatalf("warm: %v", err)
	}

	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i, key := range []string{"blocked", "queued"} {
		wg.Add(1)
		go func(i int, key string) {
			defer wg.Done()
			_, errs[i] = p.Do(context.Background(), key)
		}(i, key)
		if i == 0 {
			waitFor(t, "first run to occupy the worker", func() bool { return p.Stats().Running == 1 })
		}
	}
	waitFor(t, "second run to queue", func() bool { return p.Stats().Waiting == 1 })

	// The queue is full: a third distinct key must shed immediately.
	if _, err := p.Do(context.Background(), "shed-me"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("saturated Do error = %v, want ErrSaturated", err)
	}
	// Joining the in-flight key is not a new execution: it must not shed.
	joined := make(chan error, 1)
	go func() {
		_, err := p.Do(context.Background(), "blocked")
		joined <- err
	}()
	// A memo hit must not shed either.
	if v, err := p.Do(context.Background(), "warm"); err != nil || v != "v:warm" {
		t.Fatalf("memo hit under saturation = %q, %v", v, err)
	}
	if !p.Known("blocked") || !p.Known("warm") || p.Known("never-seen") {
		t.Fatalf("Known() misreports: blocked=%v warm=%v never-seen=%v",
			p.Known("blocked"), p.Known("warm"), p.Known("never-seen"))
	}

	close(release)
	wg.Wait()
	if err := <-joined; err != nil {
		t.Fatalf("joined call failed: %v", err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("run %d failed: %v", i, err)
		}
	}

	// The shed call must have left no trace: 3 executions (warm, blocked,
	// queued), and the join plus the memo hit are the only cache hits.
	l := p.Ledger()
	if l.Executed != 3 || l.Errors != 0 {
		t.Fatalf("ledger = %+v, want 3 executions, 0 errors", l)
	}
	if l.CacheHits != 2 {
		t.Fatalf("cache hits = %d, want 2 (join + memo hit)", l.CacheHits)
	}
	if s := p.Stats(); s != (Stats{}) {
		t.Fatalf("stats after quiesce = %+v, want zero", s)
	}
}

// TestSaturatedKeyIsRetryable pins that shedding does not poison the memo:
// the shed key was never registered, so a later Do executes it normally.
func TestSaturatedKeyIsRetryable(t *testing.T) {
	release := make(chan struct{})
	p := New(func(ctx context.Context, key string) (int, error) {
		if key == "blocker" {
			<-release
		}
		return len(key), nil
	}, Config[string]{Workers: 1, MaxWaiters: 1})

	go p.Do(context.Background(), "blocker")
	waitFor(t, "blocker to run", func() bool { return p.Stats().Running == 1 })
	go p.Do(context.Background(), "waiter")
	waitFor(t, "waiter to queue", func() bool { return p.Stats().Waiting == 1 })

	if _, err := p.Do(context.Background(), "shed"); !errors.Is(err, ErrSaturated) {
		t.Fatalf("want ErrSaturated, got %v", err)
	}
	if p.Known("shed") {
		t.Fatal("shed key must not be registered")
	}
	close(release)
	waitFor(t, "queue to drain", func() bool { s := p.Stats(); return s.Waiting == 0 && s.Running == 0 })

	v, err := p.Do(context.Background(), "shed")
	if err != nil || v != 4 {
		t.Fatalf("retried shed key = %d, %v; want 4, nil", v, err)
	}
}

// TestDeadlineWhileQueued pins deadline-aware submission: a queued caller
// whose context expires before a worker frees up gets the deadline error,
// the key stays retryable, and the queue count drops back.
func TestDeadlineWhileQueued(t *testing.T) {
	release := make(chan struct{})
	p := New(func(ctx context.Context, key string) (string, error) {
		if key == "blocker" {
			<-release
		}
		return key, nil
	}, Config[string]{Workers: 1})
	defer close(release)

	go p.Do(context.Background(), "blocker")
	waitFor(t, "blocker to run", func() bool { return p.Stats().Running == 1 })

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	_, err := p.Do(ctx, "impatient")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("queued Do error = %v, want DeadlineExceeded", err)
	}
	waitFor(t, "abandoned waiter to unwind", func() bool { return p.Stats().Waiting == 0 })
	if p.Known("impatient") {
		t.Fatal("abandoned key must be forgotten so a later Do can retry it")
	}
	if l := p.Ledger(); l.Executed != 0 {
		t.Fatalf("nothing should have executed for the dead caller; ledger = %+v", l)
	}
}
