package runner

import (
	"context"
	"fmt"
	"runtime"
	"sync"
)

// Shard is one contiguous slice [Start, End) of a batch's item index space.
type Shard struct {
	Index int // shard number, 0-based
	Start int // first item index (inclusive)
	End   int // last item index (exclusive)
}

// Len returns the number of items in the shard.
func (s Shard) Len() int { return s.End - s.Start }

// BatchConfig tunes RunBatch. The zero value of every field is a usable
// default.
type BatchConfig struct {
	// Workers bounds concurrent shard executions; 0 → runtime.NumCPU().
	Workers int
	// ShardSize is the number of items per shard; 0 → 512.
	ShardSize int
	// Window bounds how many shards may be dispatched ahead of the fold
	// cursor. Peak residency is O(Window · shard value), independent of the
	// batch size: a shard's slot is released only after its value is folded
	// and forgotten. 0 → 2 × Workers.
	Window int
	// OnProgress, when set, is called after each shard folds with the items
	// completed so far and the batch total. Calls are serialized and arrive
	// in shard order.
	OnProgress func(done, total int)
}

func (c BatchConfig) withDefaults() BatchConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.NumCPU()
	}
	if c.ShardSize <= 0 {
		c.ShardSize = 512
	}
	if c.Window <= 0 {
		c.Window = 2 * c.Workers
	}
	if c.Window < 2 {
		c.Window = 2
	}
	return c
}

// Shards returns the shard count for total items at the given shard size.
func Shards(total, shardSize int) int {
	if total <= 0 || shardSize <= 0 {
		return 0
	}
	return (total + shardSize - 1) / shardSize
}

// RunBatch executes total items sharded over a single-flight Pool and folds
// each shard's value strictly in shard order.
//
// The ordered fold is the determinism backbone of fleet aggregation:
// floating-point accumulation is non-associative, so only a fixed fold
// order makes the aggregate byte-identical across worker counts and shard
// windows. Shard execution itself is unordered and concurrent (bounded by
// Workers); the collector buffers at most Window completed-but-unfolded
// shards, forgets each shard's pool memo after folding, and publishes item
// progress through the pool's Stats/Ledger counters.
//
// On the first error — from a shard run or from fold — the remaining work
// is cancelled and that error is returned; because errors surface in shard
// order, the reported failure is deterministic too. The returned Ledger
// reflects the work actually executed.
func RunBatch[V any](
	ctx context.Context,
	total int,
	cfg BatchConfig,
	run func(ctx context.Context, s Shard) (V, error),
	fold func(s Shard, v V) error,
) (Ledger, error) {
	cfg = cfg.withDefaults()
	nShards := Shards(total, cfg.ShardSize)
	shardOf := func(i int) Shard {
		end := (i + 1) * cfg.ShardSize
		if end > total {
			end = total
		}
		return Shard{Index: i, Start: i * cfg.ShardSize, End: end}
	}

	pool := New(func(ctx context.Context, key int) (V, error) {
		return run(ctx, shardOf(key))
	}, Config[int]{Workers: cfg.Workers})
	pool.SetItemsTotal(total)
	if nShards == 0 {
		return pool.Ledger(), nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type slot struct {
		v    V
		err  error
		done chan struct{}
	}
	slots := make([]slot, nShards)
	for i := range slots {
		slots[i].done = make(chan struct{})
	}

	// Dispatcher: launch shard executions ahead of the fold cursor, bounded
	// by the window semaphore (released by the collector after each fold).
	winSem := make(chan struct{}, cfg.Window)
	var wg sync.WaitGroup
	go func() {
		for i := 0; i < nShards; i++ {
			select {
			case winSem <- struct{}{}:
			case <-ctx.Done():
				// Mark undispatched shards resolved so the collector's
				// in-order drain never blocks on them.
				for ; i < nShards; i++ {
					s := &slots[i]
					s.err = fmt.Errorf("runner: shard %d: %w", i, context.Cause(ctx))
					close(s.done)
				}
				return
			}
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				s := &slots[i]
				s.v, s.err = pool.Do(ctx, i)
				close(s.done)
			}(i)
		}
	}()

	// Collector: fold strictly in shard order.
	var firstErr error
	done := 0
	for i := 0; i < nShards; i++ {
		s := &slots[i]
		<-s.done
		if firstErr != nil {
			continue // draining after failure
		}
		if s.err != nil {
			firstErr = s.err
			cancel()
			continue
		}
		sh := shardOf(i)
		if err := fold(sh, s.v); err != nil {
			firstErr = fmt.Errorf("runner: fold shard %d: %w", i, err)
			cancel()
			continue
		}
		var zero V
		s.v = zero // release the folded value before the window reopens
		pool.Forget(i)
		done += sh.Len()
		pool.AddItemsDone(sh.Len())
		if cfg.OnProgress != nil {
			cfg.OnProgress(done, total)
		}
		<-winSem
	}
	wg.Wait()
	return pool.Ledger(), firstErr
}
