package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestMemoization: the second Do for a key must not re-execute.
func TestMemoization(t *testing.T) {
	var execs atomic.Int32
	p := New(func(_ context.Context, k int) (int, error) {
		execs.Add(1)
		return k * 2, nil
	}, Config[int]{Workers: 2})
	ctx := context.Background()
	for i := 0; i < 3; i++ {
		v, err := p.Do(ctx, 21)
		if err != nil || v != 42 {
			t.Fatalf("Do = %d, %v", v, err)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	l := p.Ledger()
	if l.Executed != 1 || l.CacheHits != 2 {
		t.Errorf("ledger = %+v, want 1 executed / 2 hits", l)
	}
}

// TestSingleFlight: concurrent Do calls for one key join a single
// execution instead of duplicating it.
func TestSingleFlight(t *testing.T) {
	var execs atomic.Int32
	release := make(chan struct{})
	p := New(func(_ context.Context, k string) (string, error) {
		execs.Add(1)
		<-release
		return "v:" + k, nil
	}, Config[string]{Workers: 8})

	const callers = 16
	var wg sync.WaitGroup
	results := make([]string, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := p.Do(context.Background(), "k")
			if err != nil {
				t.Errorf("Do: %v", err)
			}
			results[i] = v
		}(i)
	}
	// Let the callers pile up on the in-flight run, then release it.
	time.Sleep(20 * time.Millisecond)
	close(release)
	wg.Wait()

	if got := execs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
	for i, v := range results {
		if v != "v:k" {
			t.Errorf("caller %d got %q", i, v)
		}
	}
}

// TestWorkersBound: no more than Workers executions run at once.
func TestWorkersBound(t *testing.T) {
	const workers = 3
	var live, peak atomic.Int32
	p := New(func(_ context.Context, k int) (int, error) {
		n := live.Add(1)
		for {
			old := peak.Load()
			if n <= old || peak.CompareAndSwap(old, n) {
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
		live.Add(-1)
		return k, nil
	}, Config[int]{Workers: workers})

	keys := make([]int, 24)
	for i := range keys {
		keys[i] = i
	}
	if _, err := p.Collect(context.Background(), keys); err != nil {
		t.Fatal(err)
	}
	if got := peak.Load(); got > workers {
		t.Errorf("peak concurrency = %d, want ≤ %d", got, workers)
	}
}

// TestCollectOrder: values come back in key order, not completion order.
func TestCollectOrder(t *testing.T) {
	p := New(func(_ context.Context, k int) (int, error) {
		// Later keys finish first.
		time.Sleep(time.Duration(30-k) * time.Millisecond)
		return k * 10, nil
	}, Config[int]{Workers: 8})
	keys := []int{3, 1, 2, 9}
	vals, err := p.Collect(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if vals[i] != k*10 {
			t.Errorf("vals[%d] = %d, want %d", i, vals[i], k*10)
		}
	}
}

// TestCollectFirstError: the reported error is the earliest failed key's,
// deterministically, and it names the key.
func TestCollectFirstError(t *testing.T) {
	p := New(func(_ context.Context, k int) (int, error) {
		if k%2 == 1 {
			return 0, fmt.Errorf("odd key")
		}
		return k, nil
	}, Config[int]{Workers: 4})
	for trial := 0; trial < 5; trial++ {
		p := p
		if trial > 0 { // fresh pool each trial so nothing is memoized
			p = New(p.fn, p.cfg)
		}
		_, err := p.Collect(context.Background(), []int{2, 5, 4, 3})
		if err == nil {
			t.Fatal("Collect succeeded with failing keys")
		}
		if !strings.Contains(err.Error(), "5") {
			t.Errorf("error %q does not name the earliest failed key 5", err)
		}
	}
}

// TestErrorMemoized: a deterministic failure is cached like a value.
func TestErrorMemoized(t *testing.T) {
	var execs atomic.Int32
	p := New(func(_ context.Context, k int) (int, error) {
		execs.Add(1)
		return 0, errors.New("boom")
	}, Config[int]{Workers: 1})
	ctx := context.Background()
	_, err1 := p.Do(ctx, 7)
	_, err2 := p.Do(ctx, 7)
	if err1 == nil || err2 == nil {
		t.Fatal("expected errors")
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1 (error should be memoized)", got)
	}
	if l := p.Ledger(); l.Errors != 1 {
		t.Errorf("ledger errors = %d, want 1", l.Errors)
	}
}

// TestCancellation: a canceled run is returned as a context error and is
// NOT memoized — a later call with a live context re-executes it.
func TestCancellation(t *testing.T) {
	var execs atomic.Int32
	p := New(func(ctx context.Context, k int) (int, error) {
		if execs.Add(1) > 1 {
			return k, nil // the post-cancel retry completes immediately
		}
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(5 * time.Second):
			return k, nil
		}
	}, Config[int]{Workers: 2})

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(10 * time.Millisecond)
		cancel()
	}()
	if _, err := p.Do(ctx, 1); !errors.Is(err, context.Canceled) {
		t.Fatalf("Do under canceled ctx: %v, want context.Canceled", err)
	}

	// Fresh context: the key must run again (cancellation is not memoized).
	done := make(chan struct{})
	go func() {
		defer close(done)
		v, err := p.Do(context.Background(), 1)
		if err == nil && v == 1 {
			return // re-executed and completed
		}
		t.Errorf("retry after cancel: v=%d err=%v", v, err)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("retry after cancel hung")
	}
	if got := execs.Load(); got != 2 {
		t.Errorf("executions = %d, want 2 (cancel must not memoize)", got)
	}
}

// TestCancelWhileQueued: a caller canceled while waiting for a worker slot
// returns promptly and releases any joined waiters.
func TestCancelWhileQueued(t *testing.T) {
	block := make(chan struct{})
	p := New(func(_ context.Context, k int) (int, error) {
		<-block
		return k, nil
	}, Config[int]{Workers: 1})

	// Occupy the only worker.
	go p.Do(context.Background(), 0)
	time.Sleep(10 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	errc := make(chan error, 1)
	go func() {
		_, err := p.Do(ctx, 1) // queued behind key 0
		errc <- err
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Errorf("queued Do: %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("queued Do did not observe cancellation")
	}
	close(block)
}

// TestRunTimeout: a per-run timeout fails the run (and, with the caller
// context still alive, the deterministic failure is memoized).
func TestRunTimeout(t *testing.T) {
	var execs atomic.Int32
	p := New(func(ctx context.Context, k int) (int, error) {
		execs.Add(1)
		select {
		case <-ctx.Done():
			return 0, ctx.Err()
		case <-time.After(5 * time.Second):
			return k, nil
		}
	}, Config[int]{Workers: 1, RunTimeout: 10 * time.Millisecond})
	ctx := context.Background()
	if _, err := p.Do(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("Do: %v, want deadline exceeded", err)
	}
	if _, err := p.Do(ctx, 1); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("second Do: %v, want memoized deadline error", err)
	}
	if got := execs.Load(); got != 1 {
		t.Errorf("executions = %d, want 1", got)
	}
}

// TestEvents: the progress callback sees every resolution with ledger
// counters attached.
func TestEvents(t *testing.T) {
	var events []Event[int]
	p := New(func(_ context.Context, k int) (int, error) {
		return k, nil
	}, Config[int]{Workers: 1, OnEvent: func(ev Event[int]) { events = append(events, ev) }})
	ctx := context.Background()
	p.Do(ctx, 1)
	p.Do(ctx, 1)
	p.Do(ctx, 2)
	if len(events) != 3 {
		t.Fatalf("events = %d, want 3", len(events))
	}
	if events[0].Cached || !events[1].Cached || events[2].Cached {
		t.Errorf("cached flags = %v %v %v, want false true false",
			events[0].Cached, events[1].Cached, events[2].Cached)
	}
	last := events[2]
	if last.Executed != 2 || last.CacheHits != 1 {
		t.Errorf("final counters = %d executed / %d hits, want 2 / 1", last.Executed, last.CacheHits)
	}
}

// TestLedgerString: the summary line includes the headline counters.
func TestLedgerString(t *testing.T) {
	l := Ledger{Executed: 4, CacheHits: 2, Errors: 1}
	s := l.String()
	for _, frag := range []string{"4 runs", "2 cache hits", "1 errors"} {
		if !strings.Contains(s, frag) {
			t.Errorf("ledger string %q missing %q", s, frag)
		}
	}
}
