package runner

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// TestRunBatchOrderedFold pins the determinism backbone: fold always runs in
// shard order, regardless of worker count, and sees exactly the shard bounds
// RunBatch computed.
func TestRunBatchOrderedFold(t *testing.T) {
	for _, workers := range []int{1, 4, 16} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			const total, shardSize = 103, 10
			var folded []Shard
			led, err := RunBatch(context.Background(), total,
				BatchConfig{Workers: workers, ShardSize: shardSize},
				func(_ context.Context, s Shard) ([]int, error) {
					out := make([]int, 0, s.Len())
					for i := s.Start; i < s.End; i++ {
						out = append(out, i)
					}
					return out, nil
				},
				func(s Shard, v []int) error {
					if len(v) != s.Len() {
						return fmt.Errorf("shard %d: %d values for %d items", s.Index, len(v), s.Len())
					}
					folded = append(folded, s)
					return nil
				})
			if err != nil {
				t.Fatalf("RunBatch: %v", err)
			}
			want := Shards(total, shardSize)
			if len(folded) != want {
				t.Fatalf("folded %d shards, want %d", len(folded), want)
			}
			for i, s := range folded {
				if s.Index != i {
					t.Fatalf("fold order broken: position %d got shard %d", i, s.Index)
				}
				if s.Start != i*shardSize {
					t.Fatalf("shard %d start %d, want %d", i, s.Start, i*shardSize)
				}
			}
			if last := folded[len(folded)-1]; last.End != total {
				t.Fatalf("last shard ends at %d, want %d", last.End, total)
			}
			if led.ItemsDone != total || led.ItemsTotal != total {
				t.Fatalf("ledger items %d/%d, want %d/%d", led.ItemsDone, led.ItemsTotal, total, total)
			}
		})
	}
}

// TestRunBatchProgress pins the progress surface: OnProgress arrives in shard
// order with cumulative item counts, and the final Ledger matches.
func TestRunBatchProgress(t *testing.T) {
	const total, shardSize = 25, 10
	var calls [][2]int
	led, err := RunBatch(context.Background(), total,
		BatchConfig{Workers: 4, ShardSize: shardSize, OnProgress: func(done, tot int) {
			calls = append(calls, [2]int{done, tot})
		}},
		func(_ context.Context, s Shard) (int, error) { return s.Len(), nil },
		func(Shard, int) error { return nil })
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	want := [][2]int{{10, 25}, {20, 25}, {25, 25}}
	if len(calls) != len(want) {
		t.Fatalf("progress calls %v, want %v", calls, want)
	}
	for i := range want {
		if calls[i] != want[i] {
			t.Fatalf("progress call %d = %v, want %v", i, calls[i], want[i])
		}
	}
	if led.ItemsDone != total || led.ItemsTotal != total {
		t.Fatalf("ledger items %d/%d, want %d/%d", led.ItemsDone, led.ItemsTotal, total, total)
	}
}

// TestRunBatchErrorDeterministic pins that the reported error is the
// lowest-indexed failing shard, whatever execution order the workers produce,
// and that later shards stop being dispatched.
func TestRunBatchErrorDeterministic(t *testing.T) {
	const total, shardSize = 200, 10 // 20 shards
	for trial := 0; trial < 5; trial++ {
		var ran atomic.Int32
		_, err := RunBatch(context.Background(), total,
			BatchConfig{Workers: 8, ShardSize: shardSize},
			func(_ context.Context, s Shard) (int, error) {
				ran.Add(1)
				if s.Index == 3 || s.Index == 7 {
					return 0, fmt.Errorf("boom shard %d", s.Index)
				}
				return s.Len(), nil
			},
			func(Shard, int) error { return nil })
		if err == nil || !strings.Contains(err.Error(), "boom shard 3") {
			t.Fatalf("trial %d: err = %v, want boom shard 3 (lowest failing index)", trial, err)
		}
		if n := ran.Load(); int(n) >= Shards(total, shardSize) {
			t.Fatalf("trial %d: all %d shards ran despite early failure", trial, n)
		}
	}
}

// TestRunBatchFoldError pins that a fold error cancels the batch and
// surfaces wrapped with the shard index.
func TestRunBatchFoldError(t *testing.T) {
	sentinel := errors.New("fold sentinel")
	_, err := RunBatch(context.Background(), 50,
		BatchConfig{Workers: 2, ShardSize: 10},
		func(_ context.Context, s Shard) (int, error) { return s.Len(), nil },
		func(s Shard, _ int) error {
			if s.Index == 2 {
				return sentinel
			}
			return nil
		})
	if !errors.Is(err, sentinel) {
		t.Fatalf("err = %v, want wrapped sentinel", err)
	}
	if !strings.Contains(err.Error(), "shard 2") {
		t.Fatalf("err = %v, want shard index in message", err)
	}
}

// TestRunBatchCancellation pins that cancelling the context mid-batch
// returns a context error rather than deadlocking the ordered drain.
func TestRunBatchCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	release := make(chan struct{})
	var once sync.Once
	_, err := RunBatch(ctx, 100,
		BatchConfig{Workers: 2, ShardSize: 10, Window: 2},
		func(ctx context.Context, s Shard) (int, error) {
			once.Do(cancel)
			select {
			case <-ctx.Done():
				return 0, ctx.Err()
			case <-release:
				return s.Len(), nil
			}
		},
		func(Shard, int) error { return nil })
	close(release)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestRunBatchEmpty pins the zero-items edge: no shards, no fold calls, a
// clean ledger.
func TestRunBatchEmpty(t *testing.T) {
	led, err := RunBatch(context.Background(), 0, BatchConfig{},
		func(_ context.Context, s Shard) (int, error) {
			return 0, errors.New("must not run")
		},
		func(Shard, int) error { return errors.New("must not fold") })
	if err != nil {
		t.Fatalf("RunBatch: %v", err)
	}
	if led.ItemsDone != 0 || led.ItemsTotal != 0 {
		t.Fatalf("ledger items %d/%d, want 0/0", led.ItemsDone, led.ItemsTotal)
	}
}

// TestPoolForget pins Forget's contract: a forgotten completed key re-executes
// on the next Do; an in-flight key is left alone.
func TestPoolForget(t *testing.T) {
	var runs atomic.Int32
	started := make(chan struct{})
	block := make(chan struct{})
	p := New(func(ctx context.Context, key string) (int, error) {
		n := int(runs.Add(1))
		if key == "slow" {
			close(started)
			<-block
		}
		return n, nil
	}, Config[string]{Workers: 2})

	ctx := context.Background()
	if v, err := p.Do(ctx, "fast"); err != nil || v != 1 {
		t.Fatalf("first Do = (%d, %v), want (1, nil)", v, err)
	}
	// Memoized: no re-execution.
	if v, _ := p.Do(ctx, "fast"); v != 1 {
		t.Fatalf("memoized Do = %d, want 1", v)
	}
	p.Forget("fast")
	if p.Known("fast") {
		t.Fatal("Forget left the key known")
	}
	if v, _ := p.Do(ctx, "fast"); v != 2 {
		t.Fatalf("Do after Forget = %d, want re-executed value 2", v)
	}

	// Forget on an in-flight call must be a no-op (the memo stays until the
	// call completes, so the waiter still gets its value).
	go p.Do(ctx, "slow")
	<-started
	p.Forget("slow")
	if !p.Known("slow") {
		t.Fatal("Forget removed an in-flight call")
	}
	close(block)
}

// TestPoolItemsCounters pins the item-progress counters shared by Stats and
// Ledger.
func TestPoolItemsCounters(t *testing.T) {
	p := New(func(ctx context.Context, key int) (int, error) { return key, nil },
		Config[int]{Workers: 1})
	p.SetItemsTotal(40)
	p.AddItemsDone(15)
	p.AddItemsDone(10)
	if s := p.Stats(); s.ItemsDone != 25 || s.ItemsTotal != 40 {
		t.Fatalf("stats items %d/%d, want 25/40", s.ItemsDone, s.ItemsTotal)
	}
	if l := p.Ledger(); l.ItemsDone != 25 || l.ItemsTotal != 40 {
		t.Fatalf("ledger items %d/%d, want 25/40", l.ItemsDone, l.ItemsTotal)
	}
}
