package runner

import (
	"context"
	"errors"
	"runtime"
	"strings"
	"testing"
	"time"
)

// TestWorkersDefaulting: non-positive Workers configs fall back to
// runtime.NumCPU(), and the resulting pool actually executes work.
func TestWorkersDefaulting(t *testing.T) {
	for _, workers := range []int{0, -5} {
		p := New(func(ctx context.Context, k int) (int, error) { return k * k, nil },
			Config[int]{Workers: workers})
		if got, want := p.Workers(), runtime.NumCPU(); got != want {
			t.Errorf("Workers=%d config: Workers() = %d, want NumCPU = %d", workers, got, want)
		}
		v, err := p.Do(context.Background(), 9)
		if err != nil || v != 81 {
			t.Errorf("Workers=%d config: Do(9) = %d, %v; want 81, nil", workers, v, err)
		}
	}
}

// TestCollectDuplicateKeys: duplicate keys in one Collect call must each
// get the right value positionally while executing the run function only
// once per distinct key — the rest are joins or memo hits.
func TestCollectDuplicateKeys(t *testing.T) {
	p := New(func(ctx context.Context, k string) (string, error) { return "v:" + k, nil },
		Config[string]{Workers: 2})
	keys := []string{"a", "b", "a", "a", "b"}
	vals, err := p.Collect(context.Background(), keys)
	if err != nil {
		t.Fatal(err)
	}
	for i, k := range keys {
		if vals[i] != "v:"+k {
			t.Errorf("vals[%d] = %q, want %q", i, vals[i], "v:"+k)
		}
	}
	l := p.Ledger()
	if l.Executed != 2 {
		t.Errorf("executed %d runs for 2 distinct keys, want 2", l.Executed)
	}
	if l.Executed+l.CacheHits != len(keys) {
		t.Errorf("executed %d + cached %d != %d requests", l.Executed, l.CacheHits, len(keys))
	}
	if l.Errors != 0 {
		t.Errorf("errors = %d, want 0", l.Errors)
	}
}

// TestLedgerMixedOutcomes drives one pool through fresh runs, memo hits, a
// per-run timeout, and a cached-error hit, checking the ledger after each
// phase. A RunTimeout expiry with a live caller context is a property of
// the key, so it must be memoized like any other error.
func TestLedgerMixedOutcomes(t *testing.T) {
	fn := func(ctx context.Context, k string) (string, error) {
		if k == "slow" {
			select {
			case <-time.After(10 * time.Second):
			case <-ctx.Done():
				return "", ctx.Err()
			}
		}
		return "ok:" + k, nil
	}
	p := New(fn, Config[string]{Workers: 2, RunTimeout: 20 * time.Millisecond})
	ctx := context.Background()

	if _, err := p.Do(ctx, "fast"); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Do(ctx, "fast"); err != nil { // memo hit
		t.Fatal(err)
	}
	if l := p.Ledger(); l.Executed != 1 || l.CacheHits != 1 || l.Errors != 0 {
		t.Fatalf("after fast+hit: ledger %v, want 1 run / 1 hit / 0 errors", l)
	}

	_, err := p.Do(ctx, "slow")
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("slow run error = %v, want deadline exceeded", err)
	}
	if !strings.Contains(err.Error(), "slow") {
		t.Errorf("timeout error %q does not name its key", err)
	}
	_, err2 := p.Do(ctx, "slow")
	if !errors.Is(err2, context.DeadlineExceeded) {
		t.Fatalf("cached slow error = %v, want deadline exceeded", err2)
	}

	l := p.Ledger()
	if l.Executed != 2 || l.CacheHits != 2 || l.Errors != 1 {
		t.Fatalf("final ledger %v, want 2 runs / 2 hits / 1 error", l)
	}
	if l.RunTime <= 0 {
		t.Errorf("ledger RunTime = %v, want > 0 after a timed-out run", l.RunTime)
	}
	if l.Elapsed <= 0 {
		t.Errorf("ledger Elapsed = %v, want > 0", l.Elapsed)
	}
}
