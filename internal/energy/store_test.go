package energy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewStoreValidation(t *testing.T) {
	bad := []StoreConfig{
		{Capacitance: 0, VMax: 3, VOn: 2, VOff: 1, HarvestEfficiency: 0.8},
		{Capacitance: 0.033, VMax: 1, VOn: 2, VOff: 1, HarvestEfficiency: 0.8},  // VMax < VOn
		{Capacitance: 0.033, VMax: 3, VOn: 1, VOff: 2, HarvestEfficiency: 0.8},  // VOn < VOff
		{Capacitance: 0.033, VMax: 3, VOn: 2, VOff: -1, HarvestEfficiency: 0.8}, // VOff < 0
		{Capacitance: 0.033, VMax: 3, VOn: 2, VOff: 1, HarvestEfficiency: 0},
		{Capacitance: 0.033, VMax: 3, VOn: 2, VOff: 1, HarvestEfficiency: 1.2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: NewStore did not panic", i)
				}
			}()
			NewStore(cfg)
		}()
	}
}

func TestStartsFullAndOn(t *testing.T) {
	s := NewStore(DefaultConfig())
	if !s.On() {
		t.Error("store should start on")
	}
	if math.Abs(s.Voltage()-3.0) > 1e-9 {
		t.Errorf("Voltage = %g, want 3.0 (full)", s.Voltage())
	}
	// ½·0.033·(3.0²−1.8²) = 95.04 mJ usable.
	want := 0.5 * 0.033 * (3.0*3.0 - 1.8*1.8)
	if math.Abs(s.UsableCapacity()-want) > 1e-12 {
		t.Errorf("UsableCapacity = %g, want %g", s.UsableCapacity(), want)
	}
	if math.Abs(s.UsableEnergy()-want) > 1e-12 {
		t.Errorf("UsableEnergy = %g, want %g (full store)", s.UsableEnergy(), want)
	}
}

func TestDrawAccountsEnergy(t *testing.T) {
	s := NewStore(DefaultConfig())
	before := s.Energy()
	if frac := s.Draw(0.010, 1.0); frac != 1 { // 10 mW for 1 s = 10 mJ
		t.Fatalf("Draw returned %g, want 1", frac)
	}
	if got := before - s.Energy(); math.Abs(got-0.010) > 1e-12 {
		t.Errorf("drew %g J, want 0.010", got)
	}
	if got := s.Stats().ConsumedJ; math.Abs(got-0.010) > 1e-12 {
		t.Errorf("ConsumedJ = %g, want 0.010", got)
	}
}

func TestBrownOutAndPartialStep(t *testing.T) {
	s := NewStore(DefaultConfig())
	usable := s.UsableEnergy()
	// Draw slightly more than everything in one step.
	frac := s.Draw(usable*2, 1.0)
	if frac <= 0 || frac >= 1 {
		t.Fatalf("partial draw fraction = %g, want in (0,1)", frac)
	}
	if math.Abs(frac-0.5) > 1e-9 {
		t.Errorf("fraction = %g, want 0.5 (half the requested energy available)", frac)
	}
	if s.On() {
		t.Error("store should have browned out")
	}
	if s.UsableEnergy() != 0 {
		t.Errorf("UsableEnergy after brownout = %g, want 0", s.UsableEnergy())
	}
	if got := s.Stats().Brownouts; got != 1 {
		t.Errorf("Brownouts = %d, want 1", got)
	}
	// Off store supplies nothing.
	if frac := s.Draw(0.001, 1); frac != 0 {
		t.Errorf("Draw while off = %g, want 0", frac)
	}
}

func TestHysteresisRestart(t *testing.T) {
	cfg := DefaultConfig()
	s := NewStore(cfg)
	s.Draw(1000, 1) // force brown-out
	if s.On() {
		t.Fatal("expected off")
	}
	// Harvest up to just below VOn: still off.
	eOn := 0.5 * cfg.Capacitance * cfg.VOn * cfg.VOn
	eOff := 0.5 * cfg.Capacitance * cfg.VOff * cfg.VOff
	needed := (eOn - eOff) / cfg.HarvestEfficiency
	s.Harvest(needed*0.9, 1)
	if s.On() {
		t.Error("turned on below VOn")
	}
	s.Harvest(needed*0.2, 1)
	if !s.On() {
		t.Error("did not turn on at VOn")
	}
	if v := s.Voltage(); v < cfg.VOn-1e-9 {
		t.Errorf("voltage %g below VOn %g after restart", v, cfg.VOn)
	}
}

func TestHarvestEfficiencyAndRegulation(t *testing.T) {
	cfg := DefaultConfig()
	s := NewStore(cfg)
	s.Draw(0.010, 1) // make 10 mJ of room
	s.Harvest(0.010, 1)
	// 10 mW·1s at 80% = 8 mJ accepted.
	if got := s.Stats().HarvestedJ; math.Abs(got-0.008) > 1e-12 {
		t.Errorf("HarvestedJ = %g, want 0.008", got)
	}
	// Now overfill: 10 mJ offered post-efficiency but only 2 mJ of room.
	s.Harvest(0.0125, 1)
	st := s.Stats()
	if math.Abs(st.HarvestedJ-0.010) > 1e-12 {
		t.Errorf("HarvestedJ = %g, want 0.010 (clamped at full)", st.HarvestedJ)
	}
	if math.Abs(st.WastedJ-0.008) > 1e-12 {
		t.Errorf("WastedJ = %g, want 0.008", st.WastedJ)
	}
	if math.Abs(s.Voltage()-cfg.VMax) > 1e-9 {
		t.Errorf("Voltage = %g, want clamped at VMax %g", s.Voltage(), cfg.VMax)
	}
}

func TestHarvestIgnoresNonPositive(t *testing.T) {
	s := NewStore(DefaultConfig())
	s.Draw(0.010, 1)
	before := s.Energy()
	s.Harvest(0, 1)
	s.Harvest(-1, 1)
	s.Harvest(1, 0)
	if s.Energy() != before {
		t.Error("non-positive harvest changed stored energy")
	}
}

func TestCanSupply(t *testing.T) {
	s := NewStore(DefaultConfig())
	if !s.CanSupply(0.001, 1) {
		t.Error("full store cannot supply 1 mJ?")
	}
	if s.CanSupply(1000, 1) {
		t.Error("store claims to supply 1 kJ")
	}
	s.Draw(1000, 1) // brown out
	if s.CanSupply(0.0001, 1) {
		t.Error("off store claims to supply")
	}
}

func TestSetFraction(t *testing.T) {
	s := NewStore(DefaultConfig())
	s.SetFraction(0)
	if s.On() || s.UsableEnergy() > 1e-15 {
		t.Errorf("SetFraction(0): on=%v usable=%g, want off/0", s.On(), s.UsableEnergy())
	}
	s.SetFraction(1)
	if !s.On() || math.Abs(s.UsableEnergy()-s.UsableCapacity()) > 1e-12 {
		t.Errorf("SetFraction(1): on=%v usable=%g", s.On(), s.UsableEnergy())
	}
	s.SetFraction(-5)
	if s.UsableEnergy() != 0 {
		t.Error("SetFraction clamps below 0")
	}
	s.SetFraction(7)
	if math.Abs(s.UsableEnergy()-s.UsableCapacity()) > 1e-12 {
		t.Error("SetFraction clamps above 1")
	}
}

// Property: energy conservation — initial + harvested = current + consumed,
// and voltage stays within [0, VMax].
func TestPropertyConservation(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(DefaultConfig())
		initial := s.Energy()
		for i := 0; i < int(ops); i++ {
			if rng.Intn(2) == 0 {
				s.Harvest(rng.Float64()*0.2, 0.001)
			} else {
				s.Draw(rng.Float64()*0.3, 0.001)
			}
			if s.Voltage() > s.Config().VMax+1e-9 || s.Voltage() < 0 {
				return false
			}
		}
		st := s.Stats()
		lhs := initial + st.HarvestedJ
		rhs := s.Energy() + st.ConsumedJ
		return math.Abs(lhs-rhs) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: the hysteresis invariant — whenever the store reports On, the
// voltage is above VOff; whenever it transitions off→on, voltage ≥ VOn.
func TestPropertyHysteresis(t *testing.T) {
	f := func(seed int64, ops uint16) bool {
		rng := rand.New(rand.NewSource(seed))
		s := NewStore(DefaultConfig())
		cfg := s.Config()
		prevOn := s.On()
		for i := 0; i < int(ops); i++ {
			if rng.Intn(2) == 0 {
				s.Harvest(rng.Float64()*0.5, 0.01)
			} else {
				s.Draw(rng.Float64()*0.5, 0.01)
			}
			on := s.On()
			if on && s.Voltage() < cfg.VOff-1e-9 {
				return false
			}
			if !prevOn && on && s.Voltage() < cfg.VOn-1e-9 {
				return false
			}
			prevOn = on
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestDrawPriority(t *testing.T) {
	s := NewStore(DefaultConfig())
	// Priority draw works like Draw when energy is plentiful.
	if frac := s.DrawPriority(0.010, 1.0); frac != 1 {
		t.Errorf("DrawPriority = %g, want 1", frac)
	}
	// Non-positive requests are free.
	if frac := s.DrawPriority(0, 1); frac != 1 {
		t.Errorf("DrawPriority(0) = %g, want 1", frac)
	}
	if frac := s.DrawPriority(1, -1); frac != 1 {
		t.Errorf("DrawPriority(dt<0) = %g, want 1", frac)
	}
	// It keeps working after the compute domain browns out...
	s.Draw(1000, 1)
	if s.On() {
		t.Fatal("expected brown-out")
	}
	s.Harvest(0.010, 1) // 8 mJ back, still below VOn
	if s.On() {
		t.Fatal("hysteresis should keep compute off")
	}
	before := s.Energy()
	if frac := s.DrawPriority(0.004, 1.0); frac != 1 {
		t.Errorf("DrawPriority while off = %g, want 1", frac)
	}
	if got := before - s.Energy(); math.Abs(got-0.004) > 1e-12 {
		t.Errorf("priority drew %g J, want 0.004", got)
	}
	if s.On() {
		t.Error("DrawPriority flipped the hysteresis state on")
	}
	// ...drains only to the floor, returning a partial fraction...
	frac := s.DrawPriority(1.0, 1.0)
	if frac <= 0 || frac >= 1 {
		t.Errorf("oversized priority draw fraction = %g, want in (0,1)", frac)
	}
	if s.UsableEnergy() != 0 {
		t.Errorf("UsableEnergy = %g after drain, want 0", s.UsableEnergy())
	}
	// ...and reports 0 once pinned at the floor.
	if frac := s.DrawPriority(0.001, 1.0); frac != 0 {
		t.Errorf("DrawPriority at floor = %g, want 0", frac)
	}
	// Energy conservation still holds across both draw paths.
	st := s.Stats()
	if st.ConsumedJ <= 0 {
		t.Error("priority draws not counted as consumption")
	}
}

func TestLeakage(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeakagePower = 0.001 // 1 mW self-discharge
	s := NewStore(cfg)
	start := s.Energy()
	// 10 s with no harvest offered: Harvest(0, dt) still applies leakage.
	for i := 0; i < 10; i++ {
		s.Harvest(0, 1)
	}
	if got := start - s.Energy(); math.Abs(got-0.010) > 1e-12 {
		t.Errorf("leaked %g J over 10 s, want 0.010", got)
	}
	if got := s.Stats().LeakedJ; math.Abs(got-0.010) > 1e-12 {
		t.Errorf("LeakedJ = %g, want 0.010", got)
	}
	// Leakage eventually browns the device out and keeps draining below
	// the floor, all the way to empty.
	for i := 0; i < 200000 && s.Energy() > 0; i++ {
		s.Harvest(0, 1)
	}
	if s.Energy() != 0 {
		t.Errorf("Energy = %g after prolonged leakage, want 0", s.Energy())
	}
	if s.On() {
		t.Error("device still on with an empty store")
	}
	if s.Stats().Brownouts == 0 {
		t.Error("leakage brown-out not counted")
	}
	// Conservation including leakage.
	st := s.Stats()
	if math.Abs((start+st.HarvestedJ)-(s.Energy()+st.ConsumedJ+st.LeakedJ)) > 1e-9 {
		t.Error("conservation with leakage violated")
	}
}

func TestLeakageValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.LeakagePower = -1
	defer func() {
		if recover() == nil {
			t.Error("NewStore accepted negative leakage")
		}
	}()
	NewStore(cfg)
}
