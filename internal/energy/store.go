// Package energy models the energy-storage element of an energy-harvesting
// device: a small supercapacitor charged through a boost-converter harvester
// front-end (the paper's hardware uses a TI BQ25504 with a 33 mF
// supercapacitor, §6.2).
//
// The paper's simulator "modeled an energy storage element, to which we add
// harvested energy every simulator time step" and runs tasks by
// "subtracting the task's energy from the energy storage" (§6.3). Store
// implements exactly that, with the voltage-hysteresis on/off behaviour that
// makes execution intermittent: the device browns out when the capacitor
// reaches VOff and restarts only after it recharges to VOn.
package energy

import (
	"fmt"
	"math"
)

// StoreConfig describes a supercapacitor energy store.
type StoreConfig struct {
	// Capacitance in farads (paper: 33 mF).
	Capacitance float64
	// VMax is the regulation ceiling; harvesting above it is discarded.
	VMax float64
	// VOn is the restart threshold: a browned-out device resumes when the
	// capacitor voltage climbs back to VOn.
	VOn float64
	// VOff is the brown-out threshold: execution stops when the capacitor
	// voltage falls to VOff.
	VOff float64
	// HarvestEfficiency is the end-to-end harvester conversion efficiency
	// (boost converter + MPPT losses), in (0, 1].
	HarvestEfficiency float64
	// LeakagePower models supercapacitor self-discharge plus always-on
	// quiescent draw (regulators, RTC), in watts; it drains the store every
	// step regardless of device state, down to empty. Zero disables it.
	// Real power systems expose such effects to software (cf. Culpeo [74]);
	// the paper's Quetzal treats them as part of the measured P_in.
	LeakagePower float64
}

// DefaultConfig returns a store modelled on the paper's hardware: 33 mF,
// BQ25504-style operating window, 80 % conversion efficiency.
func DefaultConfig() StoreConfig {
	return StoreConfig{
		Capacitance:       0.033,
		VMax:              3.0,
		VOn:               2.4,
		VOff:              1.8,
		HarvestEfficiency: 0.80,
	}
}

// Store is a supercapacitor with hysteresis. The zero value is unusable;
// construct with NewStore.
type Store struct {
	cfg    StoreConfig
	eMax   float64 // ½CV_max²
	eOn    float64 // ½CV_on²
	eOff   float64 // ½CV_off²
	stored float64 // current energy, joules, in [0, eMax]
	on     bool

	// Lifetime accounting.
	harvested float64 // joules accepted into the store
	wasted    float64 // joules offered while full (lost to regulation)
	consumed  float64 // joules drawn by the load
	leaked    float64 // joules lost to self-discharge
	brownouts int     // number of on→off transitions
}

// NewStore builds a store that starts full and on.
// It panics on a non-physical configuration.
func NewStore(cfg StoreConfig) *Store {
	if cfg.Capacitance <= 0 {
		panic(fmt.Sprintf("energy: capacitance must be positive, got %g", cfg.Capacitance))
	}
	if !(cfg.VMax >= cfg.VOn && cfg.VOn >= cfg.VOff && cfg.VOff >= 0) {
		panic(fmt.Sprintf("energy: need VMax ≥ VOn ≥ VOff ≥ 0, got %g/%g/%g", cfg.VMax, cfg.VOn, cfg.VOff))
	}
	if cfg.HarvestEfficiency <= 0 || cfg.HarvestEfficiency > 1 {
		panic(fmt.Sprintf("energy: harvest efficiency must be in (0,1], got %g", cfg.HarvestEfficiency))
	}
	if cfg.LeakagePower < 0 {
		panic(fmt.Sprintf("energy: leakage power must be non-negative, got %g", cfg.LeakagePower))
	}
	e := func(v float64) float64 { return 0.5 * cfg.Capacitance * v * v }
	s := &Store{
		cfg:  cfg,
		eMax: e(cfg.VMax),
		eOn:  e(cfg.VOn),
		eOff: e(cfg.VOff),
	}
	s.stored = s.eMax
	s.on = true
	return s
}

// Config returns the configuration the store was built with.
func (s *Store) Config() StoreConfig { return s.cfg }

// Voltage returns the current capacitor voltage.
func (s *Store) Voltage() float64 {
	return math.Sqrt(2 * s.stored / s.cfg.Capacitance)
}

// Energy returns the absolute stored energy in joules.
func (s *Store) Energy() float64 { return s.stored }

// UsableEnergy returns the energy available above the brown-out threshold.
func (s *Store) UsableEnergy() float64 {
	if s.stored <= s.eOff {
		return 0
	}
	return s.stored - s.eOff
}

// UsableCapacity returns the usable energy of a full store.
func (s *Store) UsableCapacity() float64 { return s.eMax - s.eOff }

// Capacity returns the maximum storable energy (½CV_max²), the upper bound
// the invariant checker holds the store to.
func (s *Store) Capacity() float64 { return s.eMax }

// On reports whether the device is powered (hysteresis state).
func (s *Store) On() bool { return s.on }

// Floor returns the brown-out energy floor (½CV_off²): Draw and DrawPriority
// never take the store below it.
func (s *Store) Floor() float64 { return s.eOff }

// RestartThreshold returns the hysteresis restart energy (½CV_on²): a
// browned-out store turns back on when Harvest reaches it.
func (s *Store) RestartThreshold() float64 { return s.eOn }

// ReplayLedger returns the raw accumulator state the lockstep stepper's
// crawl replay advances out of line: the stored energy and the lifetime
// harvested/consumed sums. Pair with SetReplayLedger.
func (s *Store) ReplayLedger() (stored, harvested, consumed float64) {
	return s.stored, s.harvested, s.consumed
}

// SetReplayLedger commits replayed accumulator state back into the store.
// It is the write half of the lockstep crawl-replay seam (see
// engine/lockstep.go): the caller must have produced the values by the exact
// Harvest/DrawPriority arithmetic, step by step — this method only guards
// the physical envelope, it cannot re-derive the trajectory. The hysteresis
// state is deliberately untouched: the replayed regime never crosses a
// threshold (that is one of its entry conditions).
func (s *Store) SetReplayLedger(stored, harvested, consumed float64) {
	if stored < 0 || stored > s.eMax {
		panic(fmt.Sprintf("energy: replay ledger stored %g outside [0, %g]", stored, s.eMax))
	}
	if harvested < s.harvested || consumed < s.consumed {
		panic(fmt.Sprintf("energy: replay ledger must be monotone (harvested %g→%g, consumed %g→%g)",
			s.harvested, harvested, s.consumed, consumed))
	}
	s.stored = stored
	s.harvested = harvested
	s.consumed = consumed
}

// Harvest adds power·dt·efficiency to the store, clamped at the regulation
// ceiling, and may transition the device back on; the configured leakage
// drains first. power and dt must be non-negative (watts, seconds).
func (s *Store) Harvest(power, dt float64) {
	if dt <= 0 {
		return
	}
	s.leak(dt)
	if power <= 0 {
		return
	}
	e := power * dt * s.cfg.HarvestEfficiency
	room := s.eMax - s.stored
	if e > room {
		s.wasted += e - room
		e = room
	}
	s.stored += e
	s.harvested += e
	if !s.on && s.stored >= s.eOn {
		s.on = true
	}
}

// Draw removes power·dt joules for load execution. If the draw would push
// the store below the brown-out threshold, the store drains exactly to the
// threshold, the device turns off, and Draw returns the fraction of dt that
// was actually powered (so a 1 ms simulator step can account for partial
// progress). A full step returns 1.
func (s *Store) Draw(power, dt float64) float64 {
	if power <= 0 || dt <= 0 {
		return 1
	}
	if !s.on {
		return 0
	}
	need := power * dt
	avail := s.stored - s.eOff
	if avail <= 0 {
		s.brownout()
		return 0
	}
	if need <= avail {
		s.stored -= need
		s.consumed += need
		if s.stored <= s.eOff {
			s.brownout()
		}
		return 1
	}
	s.stored = s.eOff
	s.consumed += avail
	s.brownout()
	return avail / need
}

// leak applies self-discharge: unlike Draw it can empty the store entirely
// (leakage does not respect the brown-out floor) and it can turn the
// device off.
func (s *Store) leak(dt float64) {
	if s.cfg.LeakagePower <= 0 {
		return
	}
	e := s.cfg.LeakagePower * dt
	if e > s.stored {
		e = s.stored
	}
	s.stored -= e
	s.leaked += e
	if s.on && s.stored <= s.eOff {
		s.brownout()
	}
}

func (s *Store) brownout() {
	if s.on {
		s.on = false
		s.brownouts++
	}
}

// DrawPriority removes energy for an always-on subsystem (the capture
// pipeline: an ultra-low-power camera with its own regulator) that keeps
// running while the main compute domain is browned out. It drains at most
// down to the brown-out floor, never flips the hysteresis state, and
// returns the powered fraction of dt like Draw.
func (s *Store) DrawPriority(power, dt float64) float64 {
	if power <= 0 || dt <= 0 {
		return 1
	}
	need := power * dt
	avail := s.stored - s.eOff
	if avail <= 0 {
		return 0
	}
	if need <= avail {
		s.stored -= need
		s.consumed += need
		return 1
	}
	s.stored = s.eOff
	s.consumed += avail
	return avail / need
}

// CanSupply reports whether the store could power the given draw without
// browning out.
func (s *Store) CanSupply(power, dt float64) bool {
	return s.on && power*dt <= s.stored-s.eOff
}

// SetFraction sets the stored energy to f of the usable range above VOff
// (f=0 → at brown-out, f=1 → full) and updates the hysteresis state. Used
// to set initial conditions in experiments.
func (s *Store) SetFraction(f float64) {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	s.stored = s.eOff + f*(s.eMax-s.eOff)
	switch {
	case s.stored >= s.eOn:
		s.on = true
	case s.stored <= s.eOff:
		s.on = false
	}
}

// Stats reports lifetime accounting.
type Stats struct {
	HarvestedJ float64 // energy accepted into the store
	WastedJ    float64 // energy lost to regulation while full
	ConsumedJ  float64 // energy drawn by the load
	LeakedJ    float64 // energy lost to self-discharge
	Brownouts  int     // number of power failures
}

// Stats returns lifetime accounting counters.
func (s *Store) Stats() Stats {
	return Stats{HarvestedJ: s.harvested, WastedJ: s.wasted, ConsumedJ: s.consumed,
		LeakedJ: s.leaked, Brownouts: s.brownouts}
}
