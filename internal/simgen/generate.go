// Package simgen samples the simulator's configuration space: it turns a
// seed into a complete, valid sim.Config spanning every device profile,
// controller family, power-trace shape, checkpoint policy and buffer size
// the repository ships. The three-way differential oracle runs each sampled
// config through all three engines: fixed↔event must agree within
// Tolerance(), and event↔lockstep must be bit-identical (empty tolerance,
// see sim.Lockstep); the fuzz target FuzzParams drives the same sampler from
// arbitrary bytes; and Shrink supports minimizing a failing configuration
// to its smallest still-failing neighbour.
//
// Params uses small integer knobs (indices and integer-scaled physical
// quantities) rather than raw floats so that (a) a failing config prints
// as a short reproducible recipe, (b) shrinking is a walk on a lattice,
// and (c) the fuzzer mutates meaningful dimensions instead of NaN soup.
package simgen

import (
	"fmt"
	"math/rand"

	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/metrics"
	"quetzal/internal/policy"
	"quetzal/internal/sim"
	"quetzal/internal/trace"
)

// Knob ranges. Each Params field is normalized into its range by Normalize,
// so any integer assignment yields a valid configuration.
const (
	numProfiles   = 4
	numPowerKinds = 3
	numCheckpoint = 3

	minEvents, maxEvents     = 2, 10
	minEventDur, maxEventDur = 5, 25 // seconds, cap on event duration
	minPowerMW, maxPowerMW   = 2, 80
	minCapMF, maxCapMF       = 8, 60
	minBufCap, maxBufCap     = 4, 16
	minCaptureMS             = 500
	maxCaptureMS             = 2000
	maxJitterPct             = 40
)

// Params is one point in the configuration space.
type Params struct {
	Seed         int64 // trace + classifier randomness
	Profile      int   // 0 apollo4, 1 msp430, 2 stm32g0, 3 apollo4-multiquality
	System       int   // 0 quetzal, 1 noadapt, 2 alwaysdegrade, 3 catnap, 4 fixed-50, 5 pzo
	PowerKind    int   // 0 constant, 1 square-wave, 2 solar
	PowerMW      int   // power level, milliwatts
	NumEvents    int
	EventDurS    int // cap on event durations, seconds
	Checkpoint   int // sim.CheckpointPolicy
	JitterPct    int // TexeJitterOverride × 100
	CapMF        int // store capacitance, millifarads
	BufCap       int // buffer capacity, inputs
	CapturePerMS int // capture period, milliseconds
}

// Random samples uniformly over the whole space.
func Random(seed int64) Params {
	rng := rand.New(rand.NewSource(seed))
	span := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }
	return Params{
		Seed:         seed,
		Profile:      rng.Intn(numProfiles),
		System:       rng.Intn(numSystems),
		PowerKind:    rng.Intn(numPowerKinds),
		PowerMW:      span(minPowerMW, maxPowerMW),
		NumEvents:    span(minEvents, maxEvents),
		EventDurS:    span(minEventDur, maxEventDur),
		Checkpoint:   rng.Intn(numCheckpoint),
		JitterPct:    rng.Intn(maxJitterPct + 1),
		CapMF:        span(minCapMF, maxCapMF),
		BufCap:       span(minBufCap, maxBufCap),
		CapturePerMS: span(minCaptureMS, maxCaptureMS),
	}
}

// Normalize folds every knob into its valid range (for fuzzed inputs).
func (p Params) Normalize() Params {
	mod := func(v, n int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	clamp := func(v, lo, hi int) int { return lo + mod(v-lo, hi-lo+1) }
	p.Profile = mod(p.Profile, numProfiles)
	p.System = mod(p.System, numSystems)
	p.PowerKind = mod(p.PowerKind, numPowerKinds)
	p.PowerMW = clamp(p.PowerMW, minPowerMW, maxPowerMW)
	p.NumEvents = clamp(p.NumEvents, minEvents, maxEvents)
	p.EventDurS = clamp(p.EventDurS, minEventDur, maxEventDur)
	p.Checkpoint = mod(p.Checkpoint, numCheckpoint)
	p.JitterPct = clamp(p.JitterPct, 0, maxJitterPct)
	p.CapMF = clamp(p.CapMF, minCapMF, maxCapMF)
	p.BufCap = clamp(p.BufCap, minBufCap, maxBufCap)
	p.CapturePerMS = clamp(p.CapturePerMS, minCaptureMS, maxCaptureMS)
	return p
}

// profile returns the device profile for the index.
func (p Params) profile() device.Profile {
	switch p.Profile {
	case 1:
		return device.MSP430()
	case 2:
		return device.STM32G0()
	case 3:
		return device.Apollo4MultiQuality()
	default:
		return device.Apollo4()
	}
}

var profileNames = [...]string{"apollo4", "msp430", "stm32g0", "apollo4-multiq"}

// systemNames are the sampled controller families' display names and
// systemIDs their policy-registry ids, index-aligned. Indices 0–5 are FROZEN:
// the golden-trace recipes and the curated differential table encode them, so
// new families must be appended, never inserted.
var systemNames = [...]string{
	"quetzal", "noadapt", "alwaysdegrade", "catnap", "fixed-50", "pzo",
	"qz-div", "qz-avg", "qz-fcfs", "qz-lcfs", "qz-capture", "qz-nopid",
	"qz-noibo", "pzi", "fixed-25", "mdp", "ensure", "interweave",
}
var systemIDs = [...]string{
	policy.Quetzal, policy.NoAdapt, policy.AlwaysDegrade, policy.CatNap, "fixed-50", policy.PZO,
	policy.QuetzalDiv, policy.QuetzalAvg, policy.QuetzalFCFS, policy.QuetzalLCFS,
	policy.QuetzalCapture, policy.QuetzalNoPID, policy.QuetzalNoIBO, policy.PZI,
	"fixed-25", policy.MDPName, policy.EnSuReName, policy.InterweaveName,
}

const numSystems = len(systemNames)

var powerNames = [...]string{"constant", "square", "solar"}

// String renders the parameters as a reproducible one-line recipe.
func (p Params) String() string {
	return fmt.Sprintf("seed=%d %s/%s %s@%dmW events=%d×≤%ds ckpt=%s jitter=%d%% cap=%dmF buf=%d capture=%dms",
		p.Seed, profileNames[p.Profile], p.SystemName(), powerNames[p.PowerKind], p.PowerMW,
		p.NumEvents, p.EventDurS, sim.CheckpointPolicy(p.Checkpoint), p.JitterPct,
		p.CapMF, p.BufCap, p.CapturePerMS)
}

// SystemName names the controller family.
func (p Params) SystemName() string { return systemNames[p.System] }

// Config assembles the complete simulator configuration for the given
// engine. Both engines must receive separately built configs (controllers
// carry state), so callers invoke Config once per engine.
func (p Params) Config(engine sim.EngineKind) (sim.Config, error) {
	prof := p.profile()
	app := prof.PersonDetectionApp()
	period := float64(p.CapturePerMS) / 1000

	// Traces come first: threshold-from-trace policies (pzi) need them to
	// build. Neither trace shares RNG state with the controller, so the
	// ordering is behaviorally neutral for the frozen recipes.
	events := trace.GenerateEvents(trace.DefaultEventConfig(p.NumEvents, float64(p.EventDurS), p.Seed))
	watts := float64(p.PowerMW) / 1000
	var power trace.PowerTrace
	switch p.PowerKind {
	case 1:
		power = trace.SquareWave{High: watts, Low: watts / 10, Period: 45, Duty: 0.5}
	case 2:
		solar := trace.GenerateSolar(trace.DefaultSolarConfig(events.Duration()+120, p.Seed+2))
		// Solar peaks well above its mean; scale so the trace's level knob
		// still tracks PowerMW.
		power = trace.Scaled{Base: solar, Factor: watts / 0.05}
	default:
		power = trace.Constant{P: watts}
	}

	ctl, _, err := policy.Build(systemIDs[p.System], policy.Context{
		App:           app,
		Power:         power,
		Events:        events,
		CapturePeriod: period,
	})
	if err != nil {
		return sim.Config{}, fmt.Errorf("simgen: %v: %w", p, err)
	}

	store := energy.DefaultConfig()
	store.Capacitance = float64(p.CapMF) / 1000

	return sim.Config{
		Profile:            prof,
		App:                app,
		Controller:         ctl,
		Power:              power,
		Events:             events,
		Store:              store,
		Engine:             engine,
		CapturePeriod:      period,
		BufferCapacity:     p.BufCap,
		Seed:               p.Seed + 1,
		Checkpoint:         sim.CheckpointPolicy(p.Checkpoint),
		CheckpointInterval: 0.5,
		TexeJitterOverride: float64(p.JitterPct) / 100,
		Environment:        "simgen",
	}, nil
}

// Run builds and executes the configuration under the given engine.
func (p Params) Run(engine sim.EngineKind) (metrics.Results, error) {
	cfg, err := p.Config(engine)
	if err != nil {
		return metrics.Results{}, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return metrics.Results{}, fmt.Errorf("simgen: %v: %w", p, err)
	}
	return s.Run()
}

// RunUnchecked is Run with the invariant checker disabled (sim.ChecksOff) —
// the configuration under which the lockstep engine's crawl replay engages
// (any registered observer forces the per-segment path). The three-way
// differential oracle uses it for the lockstep arm so the comparison
// exercises the fast path it certifies; the accounting identities are still
// verified by the engine's own end-of-run Results.Check.
func (p Params) RunUnchecked(engine sim.EngineKind) (metrics.Results, error) {
	cfg, err := p.Config(engine)
	if err != nil {
		return metrics.Results{}, err
	}
	cfg.Checks = sim.ChecksOff
	s, err := sim.New(cfg)
	if err != nil {
		return metrics.Results{}, fmt.Errorf("simgen: %v: %w", p, err)
	}
	return s.Run()
}

// Shrink returns simpler neighbours of p, nearest-to-minimal first. A
// failing differential config is minimized by repeatedly moving to any
// neighbour that still fails, so the reported reproducer is the smallest
// configuration exhibiting the disagreement.
func (p Params) Shrink() []Params {
	var out []Params
	try := func(q Params) {
		if q != p {
			out = append(out, q)
		}
	}
	// Structural dimensions toward the trivial point.
	q := p
	q.System = 1 // noadapt: stateless controller
	try(q)
	q = p
	q.Profile = 0
	try(q)
	q = p
	q.PowerKind = 0
	try(q)
	q = p
	q.Checkpoint = 0
	try(q)
	q = p
	q.JitterPct = 0
	try(q)
	// Scale dimensions, halved toward their minimum.
	q = p
	q.NumEvents = shrinkInt(p.NumEvents, minEvents)
	try(q)
	q = p
	q.EventDurS = shrinkInt(p.EventDurS, minEventDur)
	try(q)
	q = p
	q.PowerMW = shrinkInt(p.PowerMW, minPowerMW)
	try(q)
	q = p
	q.CapMF = 33
	try(q)
	q = p
	q.BufCap = 10
	try(q)
	q = p
	q.CapturePerMS = 1000
	try(q)
	return out
}

// shrinkInt halves the distance from v to its minimum.
func shrinkInt(v, min int) int {
	if v <= min {
		return min
	}
	return min + (v-min)/2
}
