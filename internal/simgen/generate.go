// Package simgen samples the simulator's configuration space: it turns a
// seed into a complete, valid sim.Config spanning every device profile,
// controller family, power-trace shape, checkpoint policy and buffer size
// the repository ships. The three-way differential oracle runs each sampled
// config through all three engines: fixed↔event must agree within
// Tolerance(), and event↔lockstep must be bit-identical (empty tolerance,
// see sim.Lockstep); the fuzz target FuzzParams drives the same sampler from
// arbitrary bytes; and Shrink supports minimizing a failing configuration
// to its smallest still-failing neighbour.
//
// Params uses small integer knobs (indices and integer-scaled physical
// quantities) rather than raw floats so that (a) a failing config prints
// as a short reproducible recipe, (b) shrinking is a walk on a lattice,
// and (c) the fuzzer mutates meaningful dimensions instead of NaN soup.
package simgen

import (
	"fmt"
	"math/rand"

	"quetzal/internal/circuit"
	"quetzal/internal/device"
	"quetzal/internal/energy"
	"quetzal/internal/faults"
	"quetzal/internal/metrics"
	"quetzal/internal/policy"
	"quetzal/internal/sim"
	"quetzal/internal/trace"
)

// Knob ranges. Each Params field is normalized into its range by Normalize,
// so any integer assignment yields a valid configuration.
const (
	numProfiles   = 4
	numPowerKinds = 3
	numCheckpoint = 3

	minEvents, maxEvents     = 2, 10
	minEventDur, maxEventDur = 5, 25 // seconds, cap on event duration
	minPowerMW, maxPowerMW   = 2, 80
	minCapMF, maxCapMF       = 8, 60
	minBufCap, maxBufCap     = 4, 16
	minCaptureMS             = 500
	maxCaptureMS             = 2000
	maxJitterPct             = 40

	// Hardware-realism knobs (internal/faults). Half the random corpus
	// leaves each at zero so the ideal-hardware space keeps its coverage.
	maxFaultPct   = 40   // transient-fault probability ceiling, percent
	maxFaultLimit = 4    // injected-fault cap (0 = unlimited)
	maxDropoutS   = 20   // harvester dropout duration, seconds
	dropoutStartS = 5    // all generated dropout windows open at t=5 s
	maxMeasNJ     = 2000 // per-sample measurement energy, nanojoules
	tempPeriodS   = 60   // diurnal period compressed to simulation scale
)

// Params is one point in the configuration space.
type Params struct {
	Seed         int64 // trace + classifier randomness
	Profile      int   // 0 apollo4, 1 msp430, 2 stm32g0, 3 apollo4-multiquality
	System       int   // 0 quetzal, 1 noadapt, 2 alwaysdegrade, 3 catnap, 4 fixed-50, 5 pzo
	PowerKind    int   // 0 constant, 1 square-wave, 2 solar
	PowerMW      int   // power level, milliwatts
	NumEvents    int
	EventDurS    int // cap on event durations, seconds
	Checkpoint   int // sim.CheckpointPolicy
	JitterPct    int // TexeJitterOverride × 100
	CapMF        int // store capacitance, millifarads
	BufCap       int // buffer capacity, inputs
	CapturePerMS int // capture period, milliseconds

	// Hardware-realism knobs; all zero = ideal hardware (the pre-fault
	// space, bit-identical to configs generated before these existed).
	FaultPct   int // transient task-fault probability, percent
	FaultLimit int // injected-fault cap (0 = unlimited; needs FaultPct > 0)
	DropoutS   int // harvester dropout window duration, seconds (0 = none)
	TempC      int // junction temperature °C, 0 = default 25
	TempSwing  int // diurnal swing ±°C (needs TempC > 0, stays in band)
	MeasNJ     int // per-sample measurement energy, nanojoules
	StuckBit   int // 0 = none, 1–8 = ADC result bit (n−1) stuck high
}

// Random samples uniformly over the whole space.
func Random(seed int64) Params {
	rng := rand.New(rand.NewSource(seed))
	span := func(lo, hi int) int { return lo + rng.Intn(hi-lo+1) }
	p := Params{
		Seed:         seed,
		Profile:      rng.Intn(numProfiles),
		System:       rng.Intn(numSystems),
		PowerKind:    rng.Intn(numPowerKinds),
		PowerMW:      span(minPowerMW, maxPowerMW),
		NumEvents:    span(minEvents, maxEvents),
		EventDurS:    span(minEventDur, maxEventDur),
		Checkpoint:   rng.Intn(numCheckpoint),
		JitterPct:    rng.Intn(maxJitterPct + 1),
		CapMF:        span(minCapMF, maxCapMF),
		BufCap:       span(minBufCap, maxBufCap),
		CapturePerMS: span(minCaptureMS, maxCaptureMS),
	}
	// Realism draws come AFTER every pre-existing knob, so seeds generated
	// before these knobs existed keep their exact configurations. Each
	// knob is zero half the time: the corpus keeps full coverage of the
	// ideal-hardware space while opening the faulty one.
	p.FaultPct = halfZero(rng, 1, maxFaultPct)
	p.FaultLimit = rng.Intn(maxFaultLimit + 1)
	p.DropoutS = halfZero(rng, 1, maxDropoutS)
	p.TempC = halfZero(rng, faults.MinTempC, faults.MaxTempC)
	if p.TempC > 0 {
		if ms := maxSwingFor(p.TempC); ms > 0 {
			p.TempSwing = halfZero(rng, 1, ms)
		}
	}
	p.MeasNJ = halfZero(rng, 50, maxMeasNJ)
	p.StuckBit = halfZero(rng, 1, 8)
	return p
}

// halfZero returns 0 with probability ½, else a uniform draw from [lo, hi].
// Both rng draws are always consumed so later knobs never shift.
func halfZero(rng *rand.Rand, lo, hi int) int {
	zero := rng.Intn(2) == 0
	v := lo + rng.Intn(hi-lo+1)
	if zero {
		return 0
	}
	return v
}

// maxSwingFor bounds a diurnal swing so the excursion stays inside the
// paper's 25–50 °C characterisation band.
func maxSwingFor(tempC int) int {
	ms := tempC - faults.MinTempC
	if h := faults.MaxTempC - tempC; h < ms {
		ms = h
	}
	return ms
}

// Normalize folds every knob into its valid range (for fuzzed inputs).
func (p Params) Normalize() Params {
	mod := func(v, n int) int {
		v %= n
		if v < 0 {
			v += n
		}
		return v
	}
	clamp := func(v, lo, hi int) int { return lo + mod(v-lo, hi-lo+1) }
	p.Profile = mod(p.Profile, numProfiles)
	p.System = mod(p.System, numSystems)
	p.PowerKind = mod(p.PowerKind, numPowerKinds)
	p.PowerMW = clamp(p.PowerMW, minPowerMW, maxPowerMW)
	p.NumEvents = clamp(p.NumEvents, minEvents, maxEvents)
	p.EventDurS = clamp(p.EventDurS, minEventDur, maxEventDur)
	p.Checkpoint = mod(p.Checkpoint, numCheckpoint)
	p.JitterPct = clamp(p.JitterPct, 0, maxJitterPct)
	p.CapMF = clamp(p.CapMF, minCapMF, maxCapMF)
	p.BufCap = clamp(p.BufCap, minBufCap, maxBufCap)
	p.CapturePerMS = clamp(p.CapturePerMS, minCaptureMS, maxCaptureMS)
	// Realism knobs: 0 is always valid (knob off), anything else folds into
	// the knob's on-range. TempSwing additionally depends on TempC so the
	// diurnal excursion stays inside the 25–50 °C band.
	p.FaultPct = zeroOr(p.FaultPct, 1, maxFaultPct)
	p.FaultLimit = mod(p.FaultLimit, maxFaultLimit+1)
	p.DropoutS = zeroOr(p.DropoutS, 1, maxDropoutS)
	p.TempC = zeroOr(p.TempC, faults.MinTempC, faults.MaxTempC)
	if ms := maxSwingFor(p.TempC); p.TempC == 0 || ms == 0 {
		p.TempSwing = 0
	} else {
		p.TempSwing = zeroOr(p.TempSwing, 1, ms)
	}
	p.MeasNJ = zeroOr(p.MeasNJ, 1, maxMeasNJ)
	p.StuckBit = zeroOr(p.StuckBit, 1, 8)
	return p
}

// zeroOr keeps 0 (knob off) and folds any other value into [lo, hi].
func zeroOr(v, lo, hi int) int {
	if v == 0 {
		return 0
	}
	m := (v - lo) % (hi - lo + 1)
	if m < 0 {
		m += hi - lo + 1
	}
	return lo + m
}

// profile returns the device profile for the index.
func (p Params) profile() device.Profile {
	switch p.Profile {
	case 1:
		return device.MSP430()
	case 2:
		return device.STM32G0()
	case 3:
		return device.Apollo4MultiQuality()
	default:
		return device.Apollo4()
	}
}

var profileNames = [...]string{"apollo4", "msp430", "stm32g0", "apollo4-multiq"}

// systemNames are the sampled controller families' display names and
// systemIDs their policy-registry ids, index-aligned. Indices 0–5 are FROZEN:
// the golden-trace recipes and the curated differential table encode them, so
// new families must be appended, never inserted.
var systemNames = [...]string{
	"quetzal", "noadapt", "alwaysdegrade", "catnap", "fixed-50", "pzo",
	"qz-div", "qz-avg", "qz-fcfs", "qz-lcfs", "qz-capture", "qz-nopid",
	"qz-noibo", "pzi", "fixed-25", "mdp", "ensure", "interweave",
}
var systemIDs = [...]string{
	policy.Quetzal, policy.NoAdapt, policy.AlwaysDegrade, policy.CatNap, "fixed-50", policy.PZO,
	policy.QuetzalDiv, policy.QuetzalAvg, policy.QuetzalFCFS, policy.QuetzalLCFS,
	policy.QuetzalCapture, policy.QuetzalNoPID, policy.QuetzalNoIBO, policy.PZI,
	"fixed-25", policy.MDPName, policy.EnSuReName, policy.InterweaveName,
}

const numSystems = len(systemNames)

var powerNames = [...]string{"constant", "square", "solar"}

// String renders the parameters as a reproducible one-line recipe. Realism
// knobs are appended only when set, so ideal-hardware recipes keep their
// historical form.
func (p Params) String() string {
	s := fmt.Sprintf("seed=%d %s/%s %s@%dmW events=%d×≤%ds ckpt=%s jitter=%d%% cap=%dmF buf=%d capture=%dms",
		p.Seed, profileNames[p.Profile], p.SystemName(), powerNames[p.PowerKind], p.PowerMW,
		p.NumEvents, p.EventDurS, sim.CheckpointPolicy(p.Checkpoint), p.JitterPct,
		p.CapMF, p.BufCap, p.CapturePerMS)
	if fs := p.FaultSpec(); fs.Enabled() {
		s += " realism=" + fs.String()
	}
	return s
}

// FaultSpec maps the realism knobs onto a validated faults.Spec. All-zero
// knobs yield the zero Spec (ideal hardware).
func (p Params) FaultSpec() faults.Spec {
	var fs faults.Spec
	if p.FaultPct > 0 {
		fs.TaskFaultPct = p.FaultPct
		fs.TaskFaultLimit = p.FaultLimit
	}
	if p.DropoutS > 0 {
		fs.DropoutStartS = dropoutStartS
		fs.DropoutDurS = p.DropoutS
	}
	if p.TempC > 0 {
		fs.TempC = p.TempC
		if p.TempSwing > 0 {
			fs.TempSwingC = p.TempSwing
			fs.TempPeriodS = tempPeriodS
		}
	}
	if p.MeasNJ > 0 {
		fs.MeasEnergyNJ = p.MeasNJ
		fs.MeasLatencyUS = circuit.DefaultMeasLatencyUS
	}
	if p.StuckBit > 0 {
		fs.StuckHigh = 1 << (p.StuckBit - 1)
	}
	return fs
}

// SystemName names the controller family.
func (p Params) SystemName() string { return systemNames[p.System] }

// Config assembles the complete simulator configuration for the given
// engine. Both engines must receive separately built configs (controllers
// carry state), so callers invoke Config once per engine.
func (p Params) Config(engine sim.EngineKind) (sim.Config, error) {
	prof := p.profile()
	app := prof.PersonDetectionApp()
	period := float64(p.CapturePerMS) / 1000

	// Traces come first: threshold-from-trace policies (pzi) need them to
	// build. Neither trace shares RNG state with the controller, so the
	// ordering is behaviorally neutral for the frozen recipes.
	events := trace.GenerateEvents(trace.DefaultEventConfig(p.NumEvents, float64(p.EventDurS), p.Seed))
	watts := float64(p.PowerMW) / 1000
	var power trace.PowerTrace
	switch p.PowerKind {
	case 1:
		power = trace.SquareWave{High: watts, Low: watts / 10, Period: 45, Duty: 0.5}
	case 2:
		solar := trace.GenerateSolar(trace.DefaultSolarConfig(events.Duration()+120, p.Seed+2))
		// Solar peaks well above its mean; scale so the trace's level knob
		// still tracks PowerMW.
		power = trace.Scaled{Base: solar, Factor: watts / 0.05}
	default:
		power = trace.Constant{P: watts}
	}

	ctl, _, err := policy.Build(systemIDs[p.System], policy.Context{
		App:           app,
		Power:         power,
		Events:        events,
		CapturePeriod: period,
	})
	if err != nil {
		return sim.Config{}, fmt.Errorf("simgen: %v: %w", p, err)
	}

	store := energy.DefaultConfig()
	store.Capacitance = float64(p.CapMF) / 1000

	return sim.Config{
		Profile:            prof,
		App:                app,
		Controller:         ctl,
		Power:              power,
		Events:             events,
		Store:              store,
		Engine:             engine,
		CapturePeriod:      period,
		BufferCapacity:     p.BufCap,
		Seed:               p.Seed + 1,
		Checkpoint:         sim.CheckpointPolicy(p.Checkpoint),
		CheckpointInterval: 0.5,
		TexeJitterOverride: float64(p.JitterPct) / 100,
		Environment:        "simgen",
		Faults:             p.FaultSpec(),
	}, nil
}

// Run builds and executes the configuration under the given engine.
func (p Params) Run(engine sim.EngineKind) (metrics.Results, error) {
	cfg, err := p.Config(engine)
	if err != nil {
		return metrics.Results{}, err
	}
	s, err := sim.New(cfg)
	if err != nil {
		return metrics.Results{}, fmt.Errorf("simgen: %v: %w", p, err)
	}
	return s.Run()
}

// RunUnchecked is Run with the invariant checker disabled (sim.ChecksOff) —
// the configuration under which the lockstep engine's crawl replay engages
// (any registered observer forces the per-segment path). The three-way
// differential oracle uses it for the lockstep arm so the comparison
// exercises the fast path it certifies; the accounting identities are still
// verified by the engine's own end-of-run Results.Check.
func (p Params) RunUnchecked(engine sim.EngineKind) (metrics.Results, error) {
	cfg, err := p.Config(engine)
	if err != nil {
		return metrics.Results{}, err
	}
	cfg.Checks = sim.ChecksOff
	s, err := sim.New(cfg)
	if err != nil {
		return metrics.Results{}, fmt.Errorf("simgen: %v: %w", p, err)
	}
	return s.Run()
}

// Shrink returns simpler neighbours of p, nearest-to-minimal first. A
// failing differential config is minimized by repeatedly moving to any
// neighbour that still fails, so the reported reproducer is the smallest
// configuration exhibiting the disagreement.
func (p Params) Shrink() []Params {
	var out []Params
	try := func(q Params) {
		if q != p {
			out = append(out, q)
		}
	}
	// Structural dimensions toward the trivial point.
	q := p
	q.System = 1 // noadapt: stateless controller
	try(q)
	q = p
	q.Profile = 0
	try(q)
	q = p
	q.PowerKind = 0
	try(q)
	q = p
	q.Checkpoint = 0
	try(q)
	q = p
	q.JitterPct = 0
	try(q)
	// Scale dimensions, halved toward their minimum.
	q = p
	q.NumEvents = shrinkInt(p.NumEvents, minEvents)
	try(q)
	q = p
	q.EventDurS = shrinkInt(p.EventDurS, minEventDur)
	try(q)
	q = p
	q.PowerMW = shrinkInt(p.PowerMW, minPowerMW)
	try(q)
	q = p
	q.CapMF = 33
	try(q)
	q = p
	q.BufCap = 10
	try(q)
	q = p
	q.CapturePerMS = 1000
	try(q)
	// Realism knobs toward ideal hardware (all zero). FaultPct additionally
	// halves so a high-rate failure can shrink to the lowest still-failing
	// rate; zeroing FaultPct implies zeroing its limit.
	q = p
	q.FaultPct, q.FaultLimit = 0, 0
	try(q)
	q = p
	q.FaultPct = shrinkInt(p.FaultPct, 0)
	try(q)
	q = p
	q.DropoutS = 0
	try(q)
	q = p
	q.TempC, q.TempSwing = 0, 0
	try(q)
	q = p
	q.TempSwing = 0
	try(q)
	q = p
	q.MeasNJ = 0
	try(q)
	q = p
	q.StuckBit = 0
	try(q)
	return out
}

// shrinkInt halves the distance from v to its minimum.
func shrinkInt(v, min int) int {
	if v <= min {
		return min
	}
	return min + (v-min)/2
}
