package simgen

import "quetzal/internal/metrics"

// The differential oracle holds the two engines to a three-tier contract
// (see DESIGN.md §8 for the full rationale):
//
//  1. Tolerance() — the HARD per-config ceiling. Every configuration, both
//     curated and generated, must stay inside it. Trace-driven fields are
//     held tight (captures fire on the same clock in both engines, arrivals
//     follow the same events); trajectory-sensitive fields get an absolute
//     ceiling set at ~2× the worst deviation observed across the calibration
//     sweep (see TestCalibrate).
//  2. TypicalTolerance() — what a NON-chaotic run achieves. At least 90 % of
//     the random sweep must stay inside it (observed: ≥95 %).
//  3. The aggregate check (in TestDifferentialAggregate) — per-field sums
//     across the whole sweep must agree within 30 % / ±20, catching
//     systematic bias that per-config ceilings are too loose to see.
//
// Why not one tight per-config tolerance? The engines are *statistically*,
// not trajectory-wise, equivalent. The fixed-increment engine quantizes all
// completions to its 1 ms grid; the event-driven engine lands them exactly.
// Near a scheduling threshold a few-ms offset flips a controller decision
// (degrade vs not, drop vs keep), after which the two runs are different —
// both valid — executions: different options drain different energy, which
// can tip one run into a brown-out oscillation the other never enters. A
// handful of configs per 200 diverge this way, bimodally, and no per-field
// bound short of "anything goes" covers them; the quota and aggregate tiers
// are what actually pin the distribution down.
//
// Tightening any bound is cheap (run TestCalibrate and shrink toward the
// observed envelope); loosening one requires justifying a real behavioral
// gap between the engines.

// Tolerance is the hard per-config ceiling: every config in the curated
// table and the random sweep must satisfy it. Absolute ceilings are sized
// for the generator's bounded runs (≤ ~6 simulated minutes); unlisted
// fields (System, Environment, SimSeconds) must match exactly.
func Tolerance() metrics.Tolerance {
	return metrics.Tolerance{
		Fields: map[string]metrics.FieldTol{
			// Trace-driven: tight everywhere. Harvester dropout windows relax
			// the capture/arrival group a little — a brownout whose recharge
			// straddles a window edge recovers at different times in the two
			// engines, so a handful of captures land on different sides of it.
			"Captures":            {Abs: 2},
			"CaptureMisses":       {Rel: 0.05, Abs: 16},
			"MissedInteresting":   {Abs: 10},
			"Arrivals":            {Rel: 0.06, Abs: 10},
			"InterestingArrivals": {Rel: 0.08, Abs: 10},
			// Unreachable bookkeeping: effectively exact.
			"IBOReinsertInteresting": {Abs: 1},
			"IBOReinsertOther":       {Abs: 1},
			// Trajectory-sensitive: ceilings at ~2× the calibration extremes.
			// The hardware-realism knobs (temperature skew, transient faults)
			// widened the quality/verdict group: a few degrees of quantisation
			// skew near a threshold flips the chosen option for a whole run
			// segment, which is a regime change, not a bug (DESIGN.md §8).
			"IBODropsInteresting": {Abs: 70},
			"IBODropsOther":       {Abs: 50},
			"FalseNegatives":      {Abs: 8},
			"FalsePositives":      {Abs: 12},
			"TruePositives":       {Abs: 75},
			"TrueNegatives":       {Abs: 45},
			"HighQInteresting":    {Abs: 15},
			"HighQUninteresting":  {Abs: 6},
			"LowQInteresting":     {Abs: 90},
			"LowQUninteresting":   {Abs: 10},
			"OccupancyIntegral":   {Abs: 1200},
			"SojournSum":          {Abs: 1500},
			"SojournCount":        {Abs: 80},
			"AtomicRestarts":      {Abs: 20},
			"JobAborts":           {Abs: 12},
			"AbortedInteresting":  {Abs: 12},
			"OptionUsage":         {Abs: 70},
			"JobsCompleted":       {Abs: 110},
			"Degradations":        {Abs: 160},
			"IBOPredictions":      {Abs: 160},
			"IBOsAverted":         {Abs: 100},
			"Brownouts":           {Abs: 120},
			"SchedInvocations":    {Abs: 110},
			// Overhead tracks SchedInvocations × the profile's per-invocation
			// cost; the extended policy sweep (MSP430 × the estimator
			// variants) pushed the worst observed deviation to 1.4e-3 s /
			// 6.9e-6 J, so the ceilings sit at ~2× that.
			"OverheadSeconds": {Abs: 3e-3},
			"OverheadJoules":  {Abs: 1.5e-5},
			"HarvestedJoules": {Abs: 6.5},
			"ConsumedJoules":  {Abs: 7},
			// Regulation waste only accrues while the store pins at capacity,
			// so its divergence is bounded by the harvest ceiling.
			"WastedJoules": {Abs: 6.5},
			// Realism counters, ceilings at ~2× the calibration extremes.
			// MeasSamples tracks controller invocations (×2 for replay-
			// sensitive policies); MeasJoules/MeasSeconds scale it by the
			// per-sample cost; TransientFaults by divergence in completions.
			"TransientFaults": {Abs: 50},
			"MeasSamples":     {Abs: 100},
			"MeasJoules":      {Abs: 2e-4},
			"MeasSeconds":     {Abs: 2e-3},
		},
	}
}

// TypicalTolerance bounds a run whose engine trajectories stay in the same
// regime: relative parts for large counters, absolute floors where ± a
// handful of threshold flips is pure timing noise. The whole curated table
// and ≥90 % of the random sweep must satisfy it.
func TypicalTolerance() metrics.Tolerance {
	return metrics.Tolerance{
		Fields: map[string]metrics.FieldTol{
			"Captures":            {Rel: 0.01, Abs: 2},
			"CaptureMisses":       {Rel: 0.35, Abs: 40},
			"MissedInteresting":   {Rel: 0.35, Abs: 40},
			"Arrivals":            {Rel: 0.05, Abs: 8},
			"InterestingArrivals": {Rel: 0.05, Abs: 8},

			"IBODropsInteresting":    {Rel: 0.40, Abs: 40},
			"IBODropsOther":          {Rel: 0.40, Abs: 40},
			"IBOReinsertInteresting": {Abs: 5},
			"IBOReinsertOther":       {Abs: 5},

			"FalseNegatives": {Rel: 0.30, Abs: 30},
			"TrueNegatives":  {Rel: 0.25, Abs: 30},
			"FalsePositives": {Rel: 0.30, Abs: 30},
			"TruePositives":  {Rel: 0.25, Abs: 30},

			"HighQInteresting":   {Rel: 0.30, Abs: 30},
			"LowQInteresting":    {Rel: 0.30, Abs: 30},
			"HighQUninteresting": {Rel: 0.30, Abs: 30},
			"LowQUninteresting":  {Rel: 0.30, Abs: 30},

			"OccupancyIntegral": {Rel: 0.45, Abs: 100},
			"SojournSum":        {Rel: 0.50, Abs: 200},
			"SojournCount":      {Rel: 0.20, Abs: 30},

			"AtomicRestarts":     {Rel: 0.40, Abs: 20},
			"JobAborts":          {Rel: 0.40, Abs: 20},
			"AbortedInteresting": {Rel: 0.40, Abs: 20},
			"OptionUsage":        {Rel: 0.35, Abs: 30},

			"JobsCompleted":    {Rel: 0.15, Abs: 30},
			"Degradations":     {Rel: 0.40, Abs: 40},
			"IBOPredictions":   {Rel: 0.40, Abs: 50},
			"IBOsAverted":      {Rel: 0.40, Abs: 50},
			"Brownouts":        {Rel: 0.50, Abs: 30},
			"SchedInvocations": {Rel: 0.20, Abs: 60},
			"OverheadSeconds":  {Rel: 0.25, Abs: 1e-3},
			"OverheadJoules":   {Rel: 0.25, Abs: 1e-4},
			"HarvestedJoules":  {Rel: 0.20, Abs: 0.3},
			"ConsumedJoules":   {Rel: 0.25, Abs: 0.3},
			"WastedJoules":     {Rel: 0.30, Abs: 0.3},

			"TransientFaults": {Rel: 0.30, Abs: 40},
			"MeasSamples":     {Rel: 0.20, Abs: 120},
			"MeasJoules":      {Rel: 0.25, Abs: 3e-4},
			"MeasSeconds":     {Rel: 0.25, Abs: 3e-3},
		},
	}
}
