package simgen

import (
	"fmt"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"

	"quetzal/internal/metrics"
	"quetzal/internal/sim"
)

// sweepBase seeds the random sweep; a failure reproduces from the seed
// printed in its message alone.
const sweepBase = int64(1000)

// sweepSize returns the number of generated configs the oracle covers. The
// acceptance bar is ≥200; -short trims the sweep for local iteration.
func sweepSize() int {
	if testing.Short() {
		return 40
	}
	return 200
}

// sweepPair is one config run through all three engines: the fixed and
// event arms through Run (checks on), the lockstep arm through RunUnchecked
// so its crawl replay is live — the whole point of the third arm is to
// certify the fast path, not the fallback.
type sweepPair struct {
	p                  Params
	fixed, event, lock metrics.Results
	err                error
}

var (
	sweepOnce sync.Once
	sweepData []sweepPair
)

// runSweep executes the random sweep once per test binary (the differential
// tests all share it) with one worker per CPU.
func runSweep(t *testing.T) []sweepPair {
	t.Helper()
	sweepOnce.Do(func() {
		n := sweepSize()
		sweepData = make([]sweepPair, n)
		var wg sync.WaitGroup
		idx := make(chan int)
		for w := 0; w < runtime.GOMAXPROCS(0); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range idx {
					pr := &sweepData[i]
					pr.p = Random(sweepBase + int64(i))
					if pr.fixed, pr.err = pr.p.Run(sim.FixedIncrement); pr.err != nil {
						continue
					}
					if pr.event, pr.err = pr.p.Run(sim.EventDriven); pr.err != nil {
						continue
					}
					pr.lock, pr.err = pr.p.RunUnchecked(sim.Lockstep)
				}
			}()
		}
		for i := 0; i < n; i++ {
			idx <- i
		}
		close(idx)
		wg.Wait()
	})
	for _, pr := range sweepData {
		if pr.err != nil {
			t.Fatalf("%v: %v", pr.p, pr.err)
		}
	}
	return sweepData
}

// shrink minimizes a config that violates an engine-pair comparison: while
// any simpler neighbour still diverges, move there. Bounded so a
// pathological lattice cannot loop. The diverges predicate names the pair,
// so the minimal reproducer in a failure message states which two engines
// disagree, not just that some pair did.
func shrink(p Params, diverges func(Params) bool) Params {
	for round := 0; round < 32; round++ {
		moved := false
		for _, q := range p.Shrink() {
			if diverges(q) {
				p = q
				moved = true
				break
			}
		}
		if !moved {
			return p
		}
	}
	return p
}

// divergesFixedEvent reports whether fixed↔event disagree beyond tol on q.
func divergesFixedEvent(tol metrics.Tolerance) func(Params) bool {
	return func(q Params) bool {
		fx, err := q.Run(sim.FixedIncrement)
		if err != nil {
			return false
		}
		ev, err := q.Run(sim.EventDriven)
		if err != nil {
			return false
		}
		return len(metrics.Diff(fx, ev, tol)) > 0
	}
}

// divergesEventLockstep reports whether event↔lockstep differ in ANY field
// on q — the lockstep contract is bit-identity, so the tolerance is empty.
func divergesEventLockstep(q Params) bool {
	ev, err := q.Run(sim.EventDriven)
	if err != nil {
		return false
	}
	lk, err := q.RunUnchecked(sim.Lockstep)
	if err != nil {
		return false
	}
	return len(metrics.Diff(ev, lk, metrics.Tolerance{})) > 0
}

// curated is the hand-picked differential table: every controller family,
// every device profile, each power-trace shape, and the stress corners
// (checkpointing, jitter, tiny buffer, starvation power) appear at least
// once. Curated configs are chosen representative, so they are held to the
// tighter TypicalTolerance, not just the hard ceiling.
var curated = []Params{
	// Every system on the reference platform, comfortable power.
	{Seed: 1, System: 0, PowerMW: 40, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 2, System: 1, PowerMW: 40, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 3, System: 2, PowerMW: 40, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 4, System: 3, PowerMW: 40, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 5, System: 4, PowerMW: 40, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 6, System: 5, PowerMW: 40, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	// Every profile under Quetzal and NoAdapt.
	{Seed: 7, Profile: 1, System: 0, PowerMW: 25, NumEvents: 6, EventDurS: 10, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 8, Profile: 2, System: 0, PowerMW: 30, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 9, Profile: 3, System: 0, PowerMW: 35, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 10, Profile: 1, System: 1, PowerMW: 20, NumEvents: 5, EventDurS: 10, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	// Power-trace shapes, including square-wave droughts and solar.
	{Seed: 11, System: 0, PowerKind: 1, PowerMW: 50, NumEvents: 8, EventDurS: 20, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	{Seed: 12, System: 1, PowerKind: 2, PowerMW: 40, NumEvents: 8, EventDurS: 20, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
	// Stress corners: starvation power, tiny buffer + store, checkpoint
	// policies, execution jitter, fast capture.
	{Seed: 13, System: 1, PowerMW: 4, NumEvents: 6, EventDurS: 20, CapMF: 12, BufCap: 4, CapturePerMS: 1000},
	{Seed: 14, System: 0, PowerMW: 8, NumEvents: 6, EventDurS: 20, CapMF: 12, BufCap: 5, CapturePerMS: 500},
	{Seed: 15, System: 1, Checkpoint: 1, PowerMW: 10, NumEvents: 6, EventDurS: 15, CapMF: 20, BufCap: 10, CapturePerMS: 1000},
	{Seed: 16, System: 1, Checkpoint: 2, PowerMW: 10, NumEvents: 6, EventDurS: 15, CapMF: 20, BufCap: 10, CapturePerMS: 1000},
	{Seed: 17, System: 0, JitterPct: 30, PowerMW: 30, NumEvents: 8, EventDurS: 15, CapMF: 33, BufCap: 10, CapturePerMS: 1000},
}

// TestDifferentialCurated holds fixed↔event to TypicalTolerance on the
// hand-picked table, and event↔lockstep to exact equality.
func TestDifferentialCurated(t *testing.T) {
	for i, p := range curated {
		p := p.Normalize()
		t.Run(fmt.Sprintf("%02d-%s-%s", i, p.SystemName(), powerNames[p.PowerKind]), func(t *testing.T) {
			t.Parallel()
			fixed, err := p.Run(sim.FixedIncrement)
			if err != nil {
				t.Fatalf("%v: fixed engine: %v", p, err)
			}
			event, err := p.Run(sim.EventDriven)
			if err != nil {
				t.Fatalf("%v: event engine: %v", p, err)
			}
			lock, err := p.RunUnchecked(sim.Lockstep)
			if err != nil {
				t.Fatalf("%v: lockstep engine: %v", p, err)
			}
			if diffs := metrics.Diff(fixed, event, TypicalTolerance()); len(diffs) > 0 {
				t.Errorf("pair fixed↔event disagrees on %v:\n  fixed: %v\n  event: %v", p, fixed, event)
				for _, d := range diffs {
					t.Errorf("  %s", d)
				}
			}
			if diffs := metrics.Diff(event, lock, metrics.Tolerance{}); len(diffs) > 0 {
				t.Errorf("pair event↔lockstep not bit-identical on %v:", p)
				for _, d := range diffs {
					t.Errorf("  %s", d)
				}
			}
			if fixed.Captures == 0 {
				t.Errorf("%v: no captures — vacuous comparison", p)
			}
		})
	}
}

// TestDifferentialRandom sweeps the generated configs through both
// tolerance-compared engines and enforces the hard per-config ceiling. On a
// violation the config is shrunk to its smallest still-violating neighbour,
// so the failure message is a minimal reproducer naming the diverging pair.
func TestDifferentialRandom(t *testing.T) {
	hard := Tolerance()
	for _, pr := range runSweep(t) {
		diffs := metrics.Diff(pr.fixed, pr.event, hard)
		if len(diffs) == 0 {
			continue
		}
		small := shrink(pr.p, divergesFixedEvent(hard))
		fx, err1 := small.Run(sim.FixedIncrement)
		ev, err2 := small.Run(sim.EventDriven)
		var sdiffs []string
		if err1 == nil && err2 == nil {
			sdiffs = metrics.Diff(fx, ev, hard)
		}
		if len(sdiffs) == 0 { // shrank past the violation; report the original
			small, sdiffs = pr.p, diffs
		}
		t.Errorf("pair fixed↔event: hard ceiling exceeded; minimal reproducer: %v", small)
		for _, d := range sdiffs {
			t.Errorf("  %s", d)
		}
	}
}

// TestDifferentialLockstepExact is the third edge of the oracle triangle:
// event↔lockstep must agree on EVERY field of every sweep config — no
// tolerance at all. Combined with TestDifferentialRandom (fixed↔event
// within Tolerance) this closes fixed↔lockstep transitively, so the three
// engines form a certified triangle over the full corpus. A violation is
// shrunk and reported naming the pair.
func TestDifferentialLockstepExact(t *testing.T) {
	for _, pr := range runSweep(t) {
		diffs := metrics.Diff(pr.event, pr.lock, metrics.Tolerance{})
		if len(diffs) == 0 {
			continue
		}
		small := shrink(pr.p, divergesEventLockstep)
		ev, err1 := small.Run(sim.EventDriven)
		lk, err2 := small.RunUnchecked(sim.Lockstep)
		var sdiffs []string
		if err1 == nil && err2 == nil {
			sdiffs = metrics.Diff(ev, lk, metrics.Tolerance{})
		}
		if len(sdiffs) == 0 { // shrank past the violation; report the original
			small, sdiffs = pr.p, diffs
		}
		t.Errorf("pair event↔lockstep: bit-identity violated; minimal reproducer: %v", small)
		for _, d := range sdiffs {
			t.Errorf("  %s", d)
		}
	}
}

// TestDifferentialTypicalQuota: chaotic regime splits are expected in a
// small minority of configs — but only there. At least 90 % of the sweep
// must stay within TypicalTolerance (observed: ≥95 %).
func TestDifferentialTypicalQuota(t *testing.T) {
	typ := TypicalTolerance()
	pairs := runSweep(t)
	var out int
	for _, pr := range pairs {
		if diffs := metrics.Diff(pr.fixed, pr.event, typ); len(diffs) > 0 {
			out++
			t.Logf("outside typical tolerance: %v (%d fields: %s ...)", pr.p, len(diffs), diffs[0])
		}
	}
	if max := len(pairs) / 10; out > max {
		t.Errorf("%d/%d configs outside TypicalTolerance, quota is %d", out, len(pairs), max)
	}
}

// TestDifferentialAggregate sums every numeric Results field across the
// sweep and requires the engine totals to agree within 30 % (±20 for
// small counts). Per-config chaos is roughly symmetric, so aggregate bias
// indicates a systematic engine divergence even when every individual run
// is inside its ceiling.
func TestDifferentialAggregate(t *testing.T) {
	const (
		aggRel = 0.30
		aggAbs = 20.0
	)
	pairs := runSweep(t)
	sums := map[string][2]float64{}
	order := []string{}
	for _, pr := range pairs {
		va, vb := reflect.ValueOf(pr.fixed), reflect.ValueOf(pr.event)
		rt := va.Type()
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			var a, b float64
			switch f.Type.Kind() {
			case reflect.Int:
				a, b = float64(va.Field(i).Int()), float64(vb.Field(i).Int())
			case reflect.Float64:
				a, b = va.Field(i).Float(), vb.Field(i).Float()
			case reflect.Array:
				for k := 0; k < f.Type.Len(); k++ {
					a += float64(va.Field(i).Index(k).Int())
					b += float64(vb.Field(i).Index(k).Int())
				}
			default:
				continue
			}
			if _, seen := sums[f.Name]; !seen {
				order = append(order, f.Name)
			}
			s := sums[f.Name]
			sums[f.Name] = [2]float64{s[0] + a, s[1] + b}
		}
	}
	for _, name := range order {
		s := sums[name]
		diff := math.Abs(s[0] - s[1])
		if diff <= math.Max(aggRel*math.Max(math.Abs(s[0]), math.Abs(s[1])), aggAbs) {
			continue
		}
		t.Errorf("aggregate %s: fixed total %g vs event total %g over %d configs",
			name, s[0], s[1], len(pairs))
	}
}

// TestGeneratorValidity: every sampled or normalized point must build a
// valid configuration for both engines and stay inside the lattice.
func TestGeneratorValidity(t *testing.T) {
	for i := int64(0); i < 100; i++ {
		p := Random(i)
		if p != p.Normalize() {
			t.Fatalf("Random(%d) = %v outside its own lattice", i, p)
		}
		for _, engine := range []sim.EngineKind{sim.FixedIncrement, sim.EventDriven, sim.Lockstep} {
			cfg, err := p.Config(engine)
			if err != nil {
				t.Fatalf("%v: %v", p, err)
			}
			if _, err := sim.New(cfg); err != nil {
				t.Fatalf("%v: sim.New: %v", p, err)
			}
		}
	}
	// Hostile raw values must normalize into the lattice.
	hostile := Params{Seed: -9, Profile: -7, System: 999, PowerKind: -1,
		PowerMW: -50, NumEvents: 1 << 20, EventDurS: -3, Checkpoint: 17,
		JitterPct: 1000, CapMF: -2, BufCap: 0, CapturePerMS: -1}
	q := hostile.Normalize()
	if q != q.Normalize() {
		t.Fatalf("Normalize not idempotent: %v vs %v", q, q.Normalize())
	}
	if _, err := q.Config(sim.EventDriven); err != nil {
		t.Fatalf("normalized hostile params invalid: %v", err)
	}
}

// TestShrinkConverges: repeatedly taking the first shrink neighbour
// reaches a fixed point (no infinite shrink loops).
func TestShrinkConverges(t *testing.T) {
	p := Random(77)
	for i := 0; ; i++ {
		ns := p.Shrink()
		if len(ns) == 0 {
			break
		}
		p = ns[0]
		if i > 200 {
			t.Fatalf("shrink did not converge, at %v", p)
		}
	}
}
