package simgen

import (
	"fmt"
	"math"
	"os"
	"reflect"
	"sort"
	"testing"

	"quetzal/internal/sim"
)

// TestCalibrate measures, over the curated table plus the random sweep, the
// worst absolute and relative per-field deviation between the two engines.
// It never fails; it prints a table used to set (and audit) Tolerance().
// Run with SIMGEN_CALIBRATE=1 go test -run TestCalibrate -v ./internal/simgen/
func TestCalibrate(t *testing.T) {
	if os.Getenv("SIMGEN_CALIBRATE") == "" {
		t.Skip("set SIMGEN_CALIBRATE=1 to run the tolerance calibration sweep")
	}
	type worst struct {
		abs, rel float64
		absAt    string
	}
	acc := map[string]*worst{}
	record := func(p Params) {
		fixed, err := p.Run(sim.FixedIncrement)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		event, err := p.Run(sim.EventDriven)
		if err != nil {
			t.Fatalf("%v: %v", p, err)
		}
		va, vb := reflect.ValueOf(fixed), reflect.ValueOf(event)
		rt := va.Type()
		for i := 0; i < rt.NumField(); i++ {
			f := rt.Field(i)
			var deltas []struct {
				name string
				a, b float64
			}
			switch f.Type.Kind() {
			case reflect.Int:
				deltas = append(deltas, struct {
					name string
					a, b float64
				}{
					f.Name, float64(va.Field(i).Int()), float64(vb.Field(i).Int())})
			case reflect.Float64:
				deltas = append(deltas, struct {
					name string
					a, b float64
				}{
					f.Name, va.Field(i).Float(), vb.Field(i).Float()})
			case reflect.Array:
				for j := 0; j < f.Type.Len(); j++ {
					deltas = append(deltas, struct {
						name string
						a, b float64
					}{
						f.Name, float64(va.Field(i).Index(j).Int()), float64(vb.Field(i).Index(j).Int())})
				}
			default:
				continue
			}
			for _, d := range deltas {
				w := acc[d.name]
				if w == nil {
					w = &worst{}
					acc[d.name] = w
				}
				abs := math.Abs(d.a - d.b)
				if abs > w.abs {
					w.abs = abs
					w.absAt = fmt.Sprintf("%.4g vs %.4g seed=%d", d.a, d.b, p.Seed)
				}
				if m := math.Max(math.Abs(d.a), math.Abs(d.b)); m > 0 {
					if r := abs / m; r > w.rel {
						w.rel = r
					}
				}
			}
		}
	}
	for _, p := range curated {
		record(p.Normalize())
	}
	for i := int64(0); i < 200; i++ {
		record(Random(1000 + i))
	}
	names := make([]string, 0, len(acc))
	for n := range acc {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w := acc[n]
		t.Logf("%-24s absMax=%-12.6g relMax=%-8.4f at %s", n, w.abs, w.rel, w.absAt)
	}
}
