package simgen

import (
	"strings"
	"testing"

	"quetzal/internal/sim"
)

func TestRandomDeterministic(t *testing.T) {
	if Random(42) != Random(42) {
		t.Fatal("Random is not deterministic per seed")
	}
	if Random(1) == Random(2) {
		t.Fatal("distinct seeds produced identical params (suspicious)")
	}
}

func TestRandomCoversSpace(t *testing.T) {
	profiles := map[int]bool{}
	systems := map[int]bool{}
	powers := map[int]bool{}
	for i := int64(0); i < 200; i++ {
		p := Random(i)
		profiles[p.Profile] = true
		systems[p.System] = true
		powers[p.PowerKind] = true
	}
	if len(profiles) != numProfiles || len(systems) != numSystems || len(powers) != numPowerKinds {
		t.Fatalf("200 samples covered %d/%d profiles, %d/%d systems, %d/%d power kinds",
			len(profiles), numProfiles, len(systems), numSystems, len(powers), numPowerKinds)
	}
}

func TestStringRecipe(t *testing.T) {
	p := Random(5)
	s := p.String()
	for _, want := range []string{"seed=5", p.SystemName(), powerNames[p.PowerKind]} {
		if !strings.Contains(s, want) {
			t.Errorf("recipe %q missing %q", s, want)
		}
	}
}

// FuzzParams drives the config sampler from arbitrary knob values: any
// integer assignment must normalize into a valid configuration whose
// (short, event-driven) run completes with every runtime invariant intact.
func FuzzParams(f *testing.F) {
	for _, s := range []int64{0, 1, 77} {
		p := Random(s)
		f.Add(p.Seed, p.Profile, p.System, p.PowerKind, p.PowerMW, p.NumEvents,
			p.EventDurS, p.Checkpoint, p.JitterPct, p.CapMF, p.BufCap, p.CapturePerMS)
	}
	f.Add(int64(-1), -7, 999, -1, -50, 1<<20, -3, 17, 1000, -2, 0, -1)
	f.Fuzz(func(t *testing.T, seed int64, profile, system, powerKind, powerMW,
		numEvents, eventDur, ckpt, jitter, capMF, bufCap, captureMS int) {
		p := Params{
			Seed: seed, Profile: profile, System: system, PowerKind: powerKind,
			PowerMW: powerMW, NumEvents: numEvents, EventDurS: eventDur,
			Checkpoint: ckpt, JitterPct: jitter, CapMF: capMF, BufCap: bufCap,
			CapturePerMS: captureMS,
		}.Normalize()
		// Keep fuzz executions quick: smallest trace in the lattice.
		p.NumEvents = minEvents
		p.EventDurS = minEventDur
		// Run with checks on (the default); an invariant violation or any
		// other error here is a real bug in generator or simulator.
		if _, err := p.Run(sim.EventDriven); err != nil {
			t.Fatalf("%v: %v", p, err)
		}
	})
}
