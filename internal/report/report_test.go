package report

import (
	"bytes"
	"strings"
	"testing"
)

func TestRenderAlignment(t *testing.T) {
	tb := New("Demo", "system", "value")
	tb.AddRow("noadapt", "10")
	tb.AddRow("quetzal-long-name", "2")
	tb.AddNote("note %d", 1)
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"== Demo ==", "system", "quetzal-long-name", "* note 1"} {
		if !strings.Contains(out, frag) {
			t.Errorf("output missing %q:\n%s", frag, out)
		}
	}
	lines := strings.Split(out, "\n")
	// Header and first data row must align the second column.
	var header, row string
	for _, l := range lines {
		if strings.HasPrefix(l, "system") {
			header = l
		}
		if strings.HasPrefix(l, "noadapt") {
			row = l
		}
	}
	if strings.Index(header, "value") != strings.Index(row, "10") {
		t.Errorf("columns misaligned:\n%q\n%q", header, row)
	}
}

func TestRenderShortRow(t *testing.T) {
	tb := New("", "a", "b", "c")
	tb.AddRow("only")
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "== ") {
		t.Error("empty title rendered a header")
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("1", "2")
	tb.AddRow("3") // short row padded
	var buf bytes.Buffer
	if err := tb.RenderCSV(&buf); err != nil {
		t.Fatal(err)
	}
	want := "a,b\n1,2\n3,\n"
	if buf.String() != want {
		t.Errorf("CSV = %q, want %q", buf.String(), want)
	}
}

func TestFormatters(t *testing.T) {
	cases := []struct{ got, want string }{
		{F(0.123456), "0.123"},
		{F2(1.005), "1.00"},
		{Pct(0.4567), "45.7%"},
		{N(42), "42"},
		{X(2.918), "2.92x"},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: got %q, want %q", i, c.got, c.want)
		}
	}
}

// A zero denominator must render as "n/a": the old harness mapped it to a
// denominator of 1, which showed an unknowable cell as a measured "0.0%".
func TestPctOfZeroDenominator(t *testing.T) {
	if got := PctOf(3, 0); got != "n/a" {
		t.Errorf("PctOf(3, 0) = %q, want n/a", got)
	}
	if got := PctOf(0, 0); got != "n/a" {
		t.Errorf("PctOf(0, 0) = %q, want n/a", got)
	}
	if got := PctOf(1, 4); got != "25.0%" {
		t.Errorf("PctOf(1, 4) = %q, want 25.0%%", got)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := New("Title", "a", "b")
	tb.AddRow("1", "2")
	tb.AddRow("3") // short row padded
	tb.AddNote("a note")
	var buf bytes.Buffer
	if err := tb.RenderMarkdown(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, frag := range []string{"### Title", "| a | b |", "|---|---|", "| 1 | 2 |", "| 3 |  |", "- a note"} {
		if !strings.Contains(out, frag) {
			t.Errorf("markdown missing %q:\n%s", frag, out)
		}
	}
}
