// Package report renders the experiment harness's output: plain-text
// aligned tables (the rows/series each paper figure reports) and CSV for
// downstream plotting.
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"
)

// Table is a titled grid of cells.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string // free-form footnotes rendered under the table
}

// New creates a table with the given title and column headers.
func New(title string, columns ...string) *Table {
	return &Table{Title: title, Columns: columns}
}

// AddRow appends one row; missing cells render empty, extras are kept.
func (t *Table) AddRow(cells ...string) {
	row := make([]string, len(cells))
	copy(row, cells)
	t.Rows = append(t.Rows, row)
}

// AddNote appends a footnote line.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// Render writes the table as aligned text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("== " + t.Title + " ==\n")
	}
	writeRow := func(cells []string) {
		for i, width := range widths {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(cell)
			b.WriteString(strings.Repeat(" ", width-len(cell)))
		}
		b.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, n := range t.Notes {
		b.WriteString("  * " + n + "\n")
	}
	b.WriteString("\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderMarkdown writes the table as a GitHub-flavoured Markdown table,
// with the title as a heading and notes as a trailing list.
func (t *Table) RenderMarkdown(w io.Writer) error {
	var b strings.Builder
	if t.Title != "" {
		b.WriteString("### " + t.Title + "\n\n")
	}
	b.WriteString("| " + strings.Join(t.Columns, " | ") + " |\n")
	b.WriteString("|" + strings.Repeat("---|", len(t.Columns)) + "\n")
	for _, row := range t.Rows {
		padded := make([]string, len(t.Columns))
		copy(padded, row)
		b.WriteString("| " + strings.Join(padded, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n- " + n)
	}
	b.WriteString("\n\n")
	_, err := io.WriteString(w, b.String())
	return err
}

// RenderCSV writes the table as CSV (title and notes omitted).
func (t *Table) RenderCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return err
	}
	for _, row := range t.Rows {
		padded := make([]string, len(t.Columns))
		copy(padded, row)
		if err := cw.Write(padded); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// F formats a float compactly (3 significant digits).
func F(v float64) string { return fmt.Sprintf("%.3g", v) }

// F2 formats a float with 2 decimal places.
func F2(v float64) string { return fmt.Sprintf("%.2f", v) }

// Pct formats a fraction as a percentage with one decimal.
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v*100) }

// PctOf formats num/den as a percentage, or "n/a" when the denominator is
// zero: a zero-denominator cell is unknowable, and rendering it as "0.0%"
// would misread as a measured zero.
func PctOf(num, den float64) string {
	if den == 0 {
		return "n/a"
	}
	return Pct(num / den)
}

// N formats an integer.
func N(v int) string { return fmt.Sprintf("%d", v) }

// X formats a ratio as "N.NNx".
func X(v float64) string { return fmt.Sprintf("%.2fx", v) }
