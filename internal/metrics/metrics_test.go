package metrics

import (
	"strings"
	"testing"
)

func sample() Results {
	return Results{
		System:                 "quetzal",
		Environment:            "crowded",
		Captures:               1000,
		Arrivals:               400,
		InterestingArrivals:    200,
		IBODropsInteresting:    20,
		IBODropsOther:          10,
		IBOReinsertInteresting: 5,
		IBOReinsertOther:       1,
		FalseNegatives:         15,
		TruePositives:          160,
		TrueNegatives:          150,
		FalsePositives:         20,
		HighQInteresting:       100,
		LowQInteresting:        55,
		HighQUninteresting:     12,
		LowQUninteresting:      8,
		JobsCompleted:          500,
		Degradations:           120,
		IBOPredictions:         130,
		IBOsAverted:            110,
	}
}

func TestDerivedMetrics(t *testing.T) {
	r := sample()
	if got := r.IBOLossesInteresting(); got != 25 {
		t.Errorf("IBOLossesInteresting = %d, want 25", got)
	}
	if got := r.InterestingDiscarded(); got != 40 {
		t.Errorf("InterestingDiscarded = %d, want 40", got)
	}
	if got := r.DiscardedFraction(); got != 40.0/200 {
		t.Errorf("DiscardedFraction = %g, want 0.2", got)
	}
	if got := r.IBOFraction(); got != 0.125 {
		t.Errorf("IBOFraction = %g, want 0.125", got)
	}
	if got := r.ReportedInteresting(); got != 155 {
		t.Errorf("ReportedInteresting = %d, want 155", got)
	}
	if got := r.HighQualityShare(); got != 100.0/155 {
		t.Errorf("HighQualityShare = %g", got)
	}
	if got := r.TotalPackets(); got != 175 {
		t.Errorf("TotalPackets = %d, want 175", got)
	}
	if got := r.DegradationRate(); got != 0.24 {
		t.Errorf("DegradationRate = %g, want 0.24", got)
	}
}

func TestZeroDenominators(t *testing.T) {
	var r Results
	if r.DiscardedFraction() != 0 || r.IBOFraction() != 0 ||
		r.HighQualityShare() != 0 || r.DegradationRate() != 0 ||
		r.CaptureMissFraction() != 0 {
		t.Error("zero-denominator metrics must return 0")
	}
}

func TestCaptureMissFraction(t *testing.T) {
	r := Results{MissedInteresting: 25, InterestingArrivals: 75}
	if got := r.CaptureMissFraction(); got != 0.25 {
		t.Errorf("CaptureMissFraction = %g, want 0.25", got)
	}
}

func TestCheckAcceptsConsistent(t *testing.T) {
	if err := sample().Check(); err != nil {
		t.Errorf("Check on consistent results: %v", err)
	}
	if err := (Results{}).Check(); err != nil {
		t.Errorf("Check on zero results: %v", err)
	}
}

func TestCheckCatchesInconsistencies(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Results)
		want   string
	}{
		{"negative", func(r *Results) { r.Captures = -1 }, "negative"},
		{"interesting>arrivals", func(r *Results) { r.InterestingArrivals = r.Arrivals + 1 }, "exceed arrivals"},
		{"ibo>interesting", func(r *Results) { r.IBODropsInteresting = r.InterestingArrivals + 1 }, "exceed interesting"},
		{"overflow", func(r *Results) { r.FalseNegatives = 1000; r.HighQInteresting = 0; r.LowQInteresting = 0 }, "accounting overflow"},
		{"averted>predicted", func(r *Results) { r.IBOsAverted = r.IBOPredictions + 1 }, "averted"},
		{"reinsert>tp", func(r *Results) { r.IBOReinsertInteresting = r.TruePositives + 1 }, "reinsertion losses"},
		{"reported>tp", func(r *Results) {
			r.HighQInteresting = 1000
			r.TruePositives = 1001
			r.InterestingArrivals = 2000
			r.Arrivals = 2000
			r.IBODropsInteresting = 0
			r.FalseNegatives = 0
		}, "exceeds true positives"},
	}
	for _, tc := range cases {
		r := sample()
		tc.mutate(&r)
		err := r.Check()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Check = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

func TestCheckReportedVsTruePositives(t *testing.T) {
	r := sample()
	r.HighQInteresting = 200
	if err := r.Check(); err == nil {
		t.Error("Check accepted more reports than true positives")
	}
}

func TestString(t *testing.T) {
	s := sample().String()
	for _, frag := range []string{"quetzal", "crowded", "IBO 25", "FN 15"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String() = %q missing %q", s, frag)
		}
	}
}

func TestQueueingInstrumentationMetrics(t *testing.T) {
	r := Results{
		SimSeconds:        100,
		OccupancyIntegral: 250,
		SojournSum:        90,
		SojournCount:      30,
	}
	if got := r.AvgOccupancy(); got != 2.5 {
		t.Errorf("AvgOccupancy = %g, want 2.5", got)
	}
	if got := r.AvgSojourn(); got != 3 {
		t.Errorf("AvgSojourn = %g, want 3", got)
	}
	if got := r.Throughput(); got != 0.3 {
		t.Errorf("Throughput = %g, want 0.3", got)
	}
	// Little's Law on the metric definitions themselves.
	if l, lw := r.AvgOccupancy(), r.Throughput()*r.AvgSojourn(); l < lw {
		// L ≥ λ·W here because the integral also counts inputs that never
		// completed; with these synthetic numbers the inequality direction
		// is fixed.
		t.Errorf("L = %g < λW = %g for synthetic data", l, lw)
	}
	var zero Results
	if zero.AvgOccupancy() != 0 || zero.AvgSojourn() != 0 || zero.Throughput() != 0 {
		t.Error("zero-duration instrumentation metrics must be 0")
	}
}

// Every identity Check enforces, one mutation per row — including the
// identities added for the correctness harness (capture subsets, aborted
// bounds, degradation bounds, sojourn bound, reflective negativity).
func TestCheckCatchesEachIdentity(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Results)
		want   string
	}{
		{"negative-float", func(r *Results) { r.SojournSum = -1 }, "negative counter SojournSum"},
		{"negative-array", func(r *Results) { r.OptionUsage[2] = -4 }, "negative counter OptionUsage[2]"},
		{"misses>captures", func(r *Results) { r.CaptureMisses = r.Captures + 1 }, "capture misses"},
		{"missedInteresting>misses", func(r *Results) { r.MissedInteresting = r.CaptureMisses + 1 }, "missed interesting"},
		{"arrivals>captures", func(r *Results) { r.Arrivals = r.Captures + 1; r.InterestingArrivals = 0; r.IBODropsOther = 0 }, "surviving captures"},
		{"iboOther>uninteresting", func(r *Results) { r.IBODropsOther = r.Arrivals - r.InterestingArrivals + 1 }, "uninteresting IBO drops"},
		{"degradations>jobs", func(r *Results) { r.Degradations = r.JobsCompleted + 1 }, "degradations"},
		{"abortedInteresting>aborts", func(r *Results) { r.AbortedInteresting = r.JobAborts + 1 }, "aborted interesting"},
		{"sojourn>duration", func(r *Results) { r.SimSeconds = 10; r.SojournCount = 2; r.SojournSum = 21 }, "sojourn sum"},
	}
	for _, tc := range cases {
		r := sample()
		tc.mutate(&r)
		err := r.Check()
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: Check = %v, want error containing %q", tc.name, err, tc.want)
		}
	}
}

// Check reports every broken identity at once, not just the first.
func TestCheckJoinsAllViolations(t *testing.T) {
	r := sample()
	r.Captures = -1                      // negative counter
	r.Degradations = 9999                // > jobs completed
	r.IBOsAverted = r.IBOPredictions + 5 // > predictions
	err := r.Check()
	if err == nil {
		t.Fatal("no error")
	}
	for _, want := range []string{"negative counter Captures", "degradations", "averted"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("joined error missing %q:\n%v", want, err)
		}
	}
}

func TestDiffIdentical(t *testing.T) {
	a := sample()
	if d := Diff(a, a, Tolerance{}); len(d) != 0 {
		t.Errorf("identical results differ: %v", d)
	}
}

func TestDiffFindsEveryFieldKind(t *testing.T) {
	a := sample()
	b := sample()
	b.System = "other"      // string
	b.Captures += 100       // int
	b.HarvestedJoules = 3.5 // float64
	b.OptionUsage[1] = 7    // array element
	d := Diff(a, b, Tolerance{})
	if len(d) != 4 {
		t.Fatalf("got %d diffs, want 4: %v", len(d), d)
	}
	joined := strings.Join(d, "\n")
	for _, want := range []string{"System", "Captures", "HarvestedJoules", "OptionUsage[1]"} {
		if !strings.Contains(joined, want) {
			t.Errorf("diffs missing %q:\n%s", want, joined)
		}
	}
}

func TestDiffTolerances(t *testing.T) {
	a := sample()
	b := sample()
	b.Captures = 1040 // 4% off 1000
	if d := Diff(a, b, Tolerance{Default: FieldTol{Rel: 0.05}}); len(d) != 0 {
		t.Errorf("4%% difference flagged under 5%% tolerance: %v", d)
	}
	if d := Diff(a, b, Tolerance{Default: FieldTol{Rel: 0.01}}); len(d) != 1 {
		t.Errorf("4%% difference not flagged under 1%% tolerance: %v", d)
	}
	// Absolute floor covers small counters where relative bounds are
	// meaningless.
	b = sample()
	b.JobAborts = 3
	tol := Tolerance{Fields: map[string]FieldTol{"JobAborts": {Abs: 5}}}
	if d := Diff(a, b, tol); len(d) != 0 {
		t.Errorf("difference of 3 flagged under abs floor 5: %v", d)
	}
}
