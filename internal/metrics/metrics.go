// Package metrics defines the result accounting shared by the simulator and
// the experiment harness. The paper's evaluation reads three families of
// numbers from each run (Figures 8–13):
//
//   - interesting inputs discarded, split into losses at the buffer
//     boundary (IBOs) and classifier false negatives;
//   - radio packets reported, split by quality (high = auditable full
//     image, low = single byte) and ground truth (interesting vs
//     uninteresting false positives); and
//   - capture losses, for the capture-rate-degradation study (Fig 2b).
package metrics

import "fmt"

// Results accumulates everything one simulation run produces.
type Results struct {
	System      string  // name of the system/policy under test
	Environment string  // sensing environment label
	SimSeconds  float64 // simulated wall-clock

	// Capture pipeline.
	Captures      int // frames the camera captured
	CaptureMisses int // frames lost because the device was browned out
	// MissedInteresting counts capture misses that overlapped an
	// interesting event (lost before even reaching the buffer).
	MissedInteresting int

	// Buffer boundary. Arrivals are diff-positive frames offered to the
	// buffer (plus re-insertions are tracked separately by the buffer).
	Arrivals            int
	InterestingArrivals int
	IBODropsInteresting int // interesting inputs lost to buffer overflow on first arrival
	IBODropsOther       int
	// Re-insertion losses: an input survived its first stage but its
	// follow-up job (e.g. report after a positive classification) was lost
	// to a full buffer. These are IBO losses too — the event goes
	// unreported — but they are accounted separately because the input was
	// already judged by the classifier.
	IBOReinsertInteresting int
	IBOReinsertOther       int

	// Classifier outcomes.
	FalseNegatives int // interesting inputs discarded by the classifier
	TrueNegatives  int // uninteresting inputs correctly discarded
	FalsePositives int // uninteresting inputs passed on to reporting
	TruePositives  int // interesting inputs passed on to reporting

	// Radio packets.
	HighQInteresting   int
	LowQInteresting    int
	HighQUninteresting int
	LowQUninteresting  int

	// Queueing instrumentation (Little's-Law validation).
	OccupancyIntegral float64 // ∫ occupancy dt over the run, in input·seconds
	SojournSum        float64 // total capture→departure time of completed inputs
	SojournCount      int     // inputs that fully left the system

	// Intermittent execution.
	AtomicRestarts int // atomic tasks restarted after a power failure
	// JobAborts counts jobs abandoned by the watchdog after too many
	// progress-losing restarts (a task whose energy cost exceeds what the
	// store can bank can never complete without checkpointing).
	JobAborts          int
	AbortedInteresting int // aborted jobs whose input was interesting

	// OptionUsage counts, per option index, how many times a degradable
	// task executed at that quality (index 0 = highest). Sized to the
	// §5.1 library limit of 4 options per task.
	OptionUsage [4]int

	// Runtime behaviour.
	JobsCompleted    int
	Degradations     int // jobs executed with a degraded option
	IBOPredictions   int // Algorithm 2 detections
	IBOsAverted      int // detections cleared by a degradation option
	Brownouts        int
	SchedInvocations int
	OverheadSeconds  float64
	OverheadJoules   float64
	HarvestedJoules  float64
	ConsumedJoules   float64
}

// IBOLossesInteresting totals interesting inputs lost at the buffer
// boundary, whether on first arrival or on re-insertion.
func (r Results) IBOLossesInteresting() int {
	return r.IBODropsInteresting + r.IBOReinsertInteresting
}

// InterestingDiscarded is the paper's headline metric: interesting inputs
// lost to IBOs plus those lost to classifier false negatives.
func (r Results) InterestingDiscarded() int {
	return r.IBOLossesInteresting() + r.FalseNegatives
}

// DiscardedFraction returns InterestingDiscarded as a fraction of all
// interesting inputs that arrived at the buffer ("% of all interesting
// inputs" in Figures 9–11).
func (r Results) DiscardedFraction() float64 {
	if r.InterestingArrivals == 0 {
		return 0
	}
	return float64(r.InterestingDiscarded()) / float64(r.InterestingArrivals)
}

// IBOFraction returns only the IBO share of the discarded fraction.
func (r Results) IBOFraction() float64 {
	if r.InterestingArrivals == 0 {
		return 0
	}
	return float64(r.IBOLossesInteresting()) / float64(r.InterestingArrivals)
}

// ReportedInteresting returns the interesting inputs the device reported.
func (r Results) ReportedInteresting() int {
	return r.HighQInteresting + r.LowQInteresting
}

// HighQualityShare returns the fraction of reported interesting inputs that
// were sent at high quality (full images), in [0,1].
func (r Results) HighQualityShare() float64 {
	tot := r.ReportedInteresting()
	if tot == 0 {
		return 0
	}
	return float64(r.HighQInteresting) / float64(tot)
}

// TotalPackets counts every transmission.
func (r Results) TotalPackets() int {
	return r.HighQInteresting + r.LowQInteresting + r.HighQUninteresting + r.LowQUninteresting
}

// CaptureMissFraction returns the fraction of interesting activity lost at
// capture time (Fig 2b's "fails to even capture" losses): missed interesting
// captures over missed + arrived.
func (r Results) CaptureMissFraction() float64 {
	tot := r.MissedInteresting + r.InterestingArrivals
	if tot == 0 {
		return 0
	}
	return float64(r.MissedInteresting) / float64(tot)
}

// AvgOccupancy returns the time-averaged buffer occupancy in inputs.
func (r Results) AvgOccupancy() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return r.OccupancyIntegral / r.SimSeconds
}

// AvgSojourn returns the mean capture→departure time of completed inputs.
func (r Results) AvgSojourn() float64 {
	if r.SojournCount == 0 {
		return 0
	}
	return r.SojournSum / float64(r.SojournCount)
}

// Throughput returns completed inputs per second.
func (r Results) Throughput() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.SojournCount) / r.SimSeconds
}

// DegradationRate returns degraded jobs over completed jobs.
func (r Results) DegradationRate() float64 {
	if r.JobsCompleted == 0 {
		return 0
	}
	return float64(r.Degradations) / float64(r.JobsCompleted)
}

// Check validates internal consistency; the simulator calls it at the end
// of every run so accounting bugs fail loudly in tests and experiments.
func (r Results) Check() error {
	if r.Captures < 0 || r.Arrivals < 0 || r.InterestingArrivals < 0 {
		return fmt.Errorf("metrics: negative counters: %+v", r)
	}
	if r.InterestingArrivals > r.Arrivals {
		return fmt.Errorf("metrics: interesting arrivals %d exceed arrivals %d",
			r.InterestingArrivals, r.Arrivals)
	}
	if r.IBODropsInteresting > r.InterestingArrivals {
		return fmt.Errorf("metrics: IBO drops %d exceed interesting arrivals %d",
			r.IBODropsInteresting, r.InterestingArrivals)
	}
	// An interesting input can be discarded by a classifier at most once
	// (a negative verdict removes it), so false negatives plus entry-drops
	// cannot exceed arrivals. True positives may exceed arrivals when a
	// chain holds several classifiers, so they are excluded.
	if r.FalseNegatives+r.IBODropsInteresting > r.InterestingArrivals {
		return fmt.Errorf("metrics: interesting accounting overflow: FN %d + IBO %d > arrivals %d",
			r.FalseNegatives, r.IBODropsInteresting, r.InterestingArrivals)
	}
	if r.IBOsAverted > r.IBOPredictions {
		return fmt.Errorf("metrics: averted %d exceeds predictions %d", r.IBOsAverted, r.IBOPredictions)
	}
	if r.IBOReinsertInteresting > r.TruePositives {
		return fmt.Errorf("metrics: reinsertion losses %d exceed true positives %d",
			r.IBOReinsertInteresting, r.TruePositives)
	}
	// Reports are bounded by positive classifications — when the app has a
	// classifier at all (transmit-only apps report unclassified inputs).
	if r.TruePositives+r.FalseNegatives > 0 && r.ReportedInteresting() > r.TruePositives {
		return fmt.Errorf("metrics: reported interesting %d exceeds true positives %d",
			r.ReportedInteresting(), r.TruePositives)
	}
	return nil
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s/%s: discarded %d (IBO %d, FN %d) of %d interesting; reported %d (HQ %d); degraded %d/%d jobs",
		r.System, r.Environment, r.InterestingDiscarded(), r.IBOLossesInteresting(), r.FalseNegatives,
		r.InterestingArrivals, r.ReportedInteresting(), r.HighQInteresting, r.Degradations, r.JobsCompleted)
}
