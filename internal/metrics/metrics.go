// Package metrics defines the result accounting shared by the simulator and
// the experiment harness. The paper's evaluation reads three families of
// numbers from each run (Figures 8–13):
//
//   - interesting inputs discarded, split into losses at the buffer
//     boundary (IBOs) and classifier false negatives;
//   - radio packets reported, split by quality (high = auditable full
//     image, low = single byte) and ground truth (interesting vs
//     uninteresting false positives); and
//   - capture losses, for the capture-rate-degradation study (Fig 2b).
package metrics

import (
	"errors"
	"fmt"
	"reflect"
)

// Results accumulates everything one simulation run produces.
type Results struct {
	System      string  // name of the system/policy under test
	Environment string  // sensing environment label
	SimSeconds  float64 // simulated wall-clock

	// Capture pipeline.
	Captures      int // frames the camera captured
	CaptureMisses int // frames lost because the device was browned out
	// MissedInteresting counts capture misses that overlapped an
	// interesting event (lost before even reaching the buffer).
	MissedInteresting int

	// Buffer boundary. Arrivals are diff-positive frames offered to the
	// buffer (plus re-insertions are tracked separately by the buffer).
	Arrivals            int
	InterestingArrivals int
	IBODropsInteresting int // interesting inputs lost to buffer overflow on first arrival
	IBODropsOther       int
	// Re-insertion losses: an input survived its first stage but its
	// follow-up job (e.g. report after a positive classification) was lost
	// to a full buffer. These are IBO losses too — the event goes
	// unreported — but they are accounted separately because the input was
	// already judged by the classifier.
	IBOReinsertInteresting int
	IBOReinsertOther       int

	// Classifier outcomes.
	FalseNegatives int // interesting inputs discarded by the classifier
	TrueNegatives  int // uninteresting inputs correctly discarded
	FalsePositives int // uninteresting inputs passed on to reporting
	TruePositives  int // interesting inputs passed on to reporting

	// Radio packets.
	HighQInteresting   int
	LowQInteresting    int
	HighQUninteresting int
	LowQUninteresting  int

	// Queueing instrumentation (Little's-Law validation).
	OccupancyIntegral float64 // ∫ occupancy dt over the run, in input·seconds
	SojournSum        float64 // total capture→departure time of completed inputs
	SojournCount      int     // inputs that fully left the system

	// Intermittent execution.
	AtomicRestarts int // atomic tasks restarted after a power failure
	// JobAborts counts jobs abandoned by the watchdog after too many
	// progress-losing restarts (a task whose energy cost exceeds what the
	// store can bank can never complete without checkpointing).
	JobAborts          int
	AbortedInteresting int // aborted jobs whose input was interesting

	// OptionUsage counts, per option index, how many times a degradable
	// task executed at that quality (index 0 = highest). Sized to the
	// §5.1 library limit of 4 options per task.
	OptionUsage [4]int

	// Runtime behaviour.
	JobsCompleted    int
	Degradations     int // jobs executed with a degraded option
	IBOPredictions   int // Algorithm 2 detections
	IBOsAverted      int // detections cleared by a degradation option
	Brownouts        int
	SchedInvocations int
	OverheadSeconds  float64
	OverheadJoules   float64
	HarvestedJoules  float64
	ConsumedJoules   float64
	WastedJoules     float64 // harvest lost to regulation while the store was full

	// Hardware realism (internal/faults). TransientFaults counts injected
	// task-execution faults detected at completion (each forces a full
	// re-execution). MeasSamples counts controller ADC reads charged for;
	// MeasJoules/MeasSeconds are the intended per-sample costs summed over
	// the run (MeasJoules == MeasSamples × per-sample energy exactly — the
	// invariant checker holds this identity).
	TransientFaults int
	MeasSamples     int
	MeasJoules      float64
	MeasSeconds     float64
}

// IBOLossesInteresting totals interesting inputs lost at the buffer
// boundary, whether on first arrival or on re-insertion.
func (r Results) IBOLossesInteresting() int {
	return r.IBODropsInteresting + r.IBOReinsertInteresting
}

// InterestingDiscarded is the paper's headline metric: interesting inputs
// lost to IBOs plus those lost to classifier false negatives.
func (r Results) InterestingDiscarded() int {
	return r.IBOLossesInteresting() + r.FalseNegatives
}

// DiscardedFraction returns InterestingDiscarded as a fraction of all
// interesting inputs that arrived at the buffer ("% of all interesting
// inputs" in Figures 9–11).
func (r Results) DiscardedFraction() float64 {
	if r.InterestingArrivals == 0 {
		return 0
	}
	return float64(r.InterestingDiscarded()) / float64(r.InterestingArrivals)
}

// IBOFraction returns only the IBO share of the discarded fraction.
func (r Results) IBOFraction() float64 {
	if r.InterestingArrivals == 0 {
		return 0
	}
	return float64(r.IBOLossesInteresting()) / float64(r.InterestingArrivals)
}

// ReportedInteresting returns the interesting inputs the device reported.
func (r Results) ReportedInteresting() int {
	return r.HighQInteresting + r.LowQInteresting
}

// HighQualityShare returns the fraction of reported interesting inputs that
// were sent at high quality (full images), in [0,1].
func (r Results) HighQualityShare() float64 {
	tot := r.ReportedInteresting()
	if tot == 0 {
		return 0
	}
	return float64(r.HighQInteresting) / float64(tot)
}

// TotalPackets counts every transmission.
func (r Results) TotalPackets() int {
	return r.HighQInteresting + r.LowQInteresting + r.HighQUninteresting + r.LowQUninteresting
}

// CaptureMissFraction returns the fraction of interesting activity lost at
// capture time (Fig 2b's "fails to even capture" losses): missed interesting
// captures over missed + arrived.
func (r Results) CaptureMissFraction() float64 {
	tot := r.MissedInteresting + r.InterestingArrivals
	if tot == 0 {
		return 0
	}
	return float64(r.MissedInteresting) / float64(tot)
}

// AvgOccupancy returns the time-averaged buffer occupancy in inputs.
func (r Results) AvgOccupancy() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return r.OccupancyIntegral / r.SimSeconds
}

// AvgSojourn returns the mean capture→departure time of completed inputs.
func (r Results) AvgSojourn() float64 {
	if r.SojournCount == 0 {
		return 0
	}
	return r.SojournSum / float64(r.SojournCount)
}

// Throughput returns completed inputs per second.
func (r Results) Throughput() float64 {
	if r.SimSeconds <= 0 {
		return 0
	}
	return float64(r.SojournCount) / r.SimSeconds
}

// DegradationRate returns degraded jobs over completed jobs.
func (r Results) DegradationRate() float64 {
	if r.JobsCompleted == 0 {
		return 0
	}
	return float64(r.Degradations) / float64(r.JobsCompleted)
}

// Check validates internal consistency; the simulator calls it at the end
// of every run so accounting bugs fail loudly in tests and experiments.
// Every violated identity is reported (joined), not just the first, so a
// single failing run exposes its full accounting damage at once.
func (r Results) Check() error {
	var errs []error
	bad := func(format string, args ...any) {
		errs = append(errs, fmt.Errorf("metrics: "+format, args...))
	}

	// No counter may ever be negative: walk every numeric field so new
	// counters are covered automatically.
	v := reflect.ValueOf(r)
	t := v.Type()
	for i := 0; i < t.NumField(); i++ {
		switch f := v.Field(i); f.Kind() {
		case reflect.Int:
			if f.Int() < 0 {
				bad("negative counter %s = %d", t.Field(i).Name, f.Int())
			}
		case reflect.Float64:
			if f.Float() < 0 {
				bad("negative counter %s = %g", t.Field(i).Name, f.Float())
			}
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				if f.Index(j).Int() < 0 {
					bad("negative counter %s[%d] = %d", t.Field(i).Name, j, f.Index(j).Int())
				}
			}
		}
	}

	// Capture pipeline: misses are a subset of captures, interesting
	// misses a subset of misses, and only non-missed frames can arrive.
	if r.CaptureMisses > r.Captures {
		bad("capture misses %d exceed captures %d", r.CaptureMisses, r.Captures)
	}
	if r.MissedInteresting > r.CaptureMisses {
		bad("missed interesting %d exceed capture misses %d", r.MissedInteresting, r.CaptureMisses)
	}
	if r.Arrivals > r.Captures-r.CaptureMisses && r.Captures > 0 {
		bad("arrivals %d exceed surviving captures %d", r.Arrivals, r.Captures-r.CaptureMisses)
	}

	// Buffer boundary.
	if r.InterestingArrivals > r.Arrivals {
		bad("interesting arrivals %d exceed arrivals %d", r.InterestingArrivals, r.Arrivals)
	}
	if r.IBODropsInteresting > r.InterestingArrivals {
		bad("IBO drops %d exceed interesting arrivals %d", r.IBODropsInteresting, r.InterestingArrivals)
	}
	if r.IBODropsOther > r.Arrivals-r.InterestingArrivals && r.Arrivals >= r.InterestingArrivals {
		bad("uninteresting IBO drops %d exceed uninteresting arrivals %d",
			r.IBODropsOther, r.Arrivals-r.InterestingArrivals)
	}
	// An interesting input can be discarded by a classifier at most once
	// (a negative verdict removes it), so false negatives plus entry-drops
	// cannot exceed arrivals. True positives may exceed arrivals when a
	// chain holds several classifiers, so they are excluded.
	if r.FalseNegatives+r.IBODropsInteresting > r.InterestingArrivals {
		bad("interesting accounting overflow: FN %d + IBO %d > arrivals %d",
			r.FalseNegatives, r.IBODropsInteresting, r.InterestingArrivals)
	}
	if r.IBOsAverted > r.IBOPredictions {
		bad("averted %d exceeds predictions %d", r.IBOsAverted, r.IBOPredictions)
	}
	if r.IBOReinsertInteresting > r.TruePositives {
		bad("reinsertion losses %d exceed true positives %d",
			r.IBOReinsertInteresting, r.TruePositives)
	}
	// Reports are bounded by positive classifications — when the app has a
	// classifier at all (transmit-only apps report unclassified inputs).
	if r.TruePositives+r.FalseNegatives > 0 && r.ReportedInteresting() > r.TruePositives {
		bad("reported interesting %d exceeds true positives %d",
			r.ReportedInteresting(), r.TruePositives)
	}

	// Runtime behaviour.
	if r.Degradations > r.JobsCompleted {
		bad("degradations %d exceed completed jobs %d", r.Degradations, r.JobsCompleted)
	}
	if r.AbortedInteresting > r.JobAborts {
		bad("aborted interesting %d exceed aborts %d", r.AbortedInteresting, r.JobAborts)
	}

	// Queueing instrumentation: no completed input can sojourn longer than
	// the run itself, so the sum is bounded by count × duration.
	if r.SimSeconds > 0 && r.SojournSum > float64(r.SojournCount)*r.SimSeconds+1e-9 {
		bad("sojourn sum %g exceeds %d inputs × %g s run", r.SojournSum, r.SojournCount, r.SimSeconds)
	}

	return errors.Join(errs...)
}

// FieldTol is a per-field comparison tolerance for Diff: the absolute
// difference must satisfy |a−b| ≤ max(Rel·max(|a|,|b|), Abs).
type FieldTol struct {
	Rel float64
	Abs float64
}

// Tolerance configures Diff. Zero-valued fields fall back to exact
// comparison, so callers state every permitted disagreement explicitly.
type Tolerance struct {
	// Default applies to every numeric field without an override.
	Default FieldTol
	// Fields overrides the default per struct-field name (e.g.
	// "Brownouts"). An OptionUsage element uses the name "OptionUsage".
	Fields map[string]FieldTol
}

func (t Tolerance) forField(name string) FieldTol {
	if ft, ok := t.Fields[name]; ok {
		return ft
	}
	return t.Default
}

func (ft FieldTol) ok(a, b float64) bool {
	diff := a - b
	if diff < 0 {
		diff = -diff
	}
	scale := a
	if b > a {
		scale = b
	}
	if scale < 0 {
		scale = -scale
	}
	allowed := ft.Rel * scale
	if ft.Abs > allowed {
		allowed = ft.Abs
	}
	return diff <= allowed
}

// Diff compares every exported field of two Results under the given
// tolerance and returns one human-readable line per disagreeing field
// (empty when the two agree everywhere). Numeric fields compare within
// tolerance; string fields must match exactly. Walking the struct by
// reflection means a future counter is compared automatically — a new
// field can never silently escape the differential oracle.
func Diff(a, b Results, tol Tolerance) []string {
	var diffs []string
	va, vb := reflect.ValueOf(a), reflect.ValueOf(b)
	t := va.Type()
	for i := 0; i < t.NumField(); i++ {
		name := t.Field(i).Name
		fa, fb := va.Field(i), vb.Field(i)
		ft := tol.forField(name)
		switch fa.Kind() {
		case reflect.String:
			if fa.String() != fb.String() {
				diffs = append(diffs, fmt.Sprintf("%s: %q vs %q", name, fa.String(), fb.String()))
			}
		case reflect.Int:
			if !ft.ok(float64(fa.Int()), float64(fb.Int())) {
				diffs = append(diffs, fmt.Sprintf("%s: %d vs %d (tol rel %g abs %g)",
					name, fa.Int(), fb.Int(), ft.Rel, ft.Abs))
			}
		case reflect.Float64:
			if !ft.ok(fa.Float(), fb.Float()) {
				diffs = append(diffs, fmt.Sprintf("%s: %g vs %g (tol rel %g abs %g)",
					name, fa.Float(), fb.Float(), ft.Rel, ft.Abs))
			}
		case reflect.Array:
			for j := 0; j < fa.Len(); j++ {
				if !ft.ok(float64(fa.Index(j).Int()), float64(fb.Index(j).Int())) {
					diffs = append(diffs, fmt.Sprintf("%s[%d]: %d vs %d (tol rel %g abs %g)",
						name, j, fa.Index(j).Int(), fb.Index(j).Int(), ft.Rel, ft.Abs))
				}
			}
		default:
			diffs = append(diffs, fmt.Sprintf("%s: uncomparable kind %s", name, fa.Kind()))
		}
	}
	return diffs
}

// String renders a one-line summary.
func (r Results) String() string {
	return fmt.Sprintf("%s/%s: discarded %d (IBO %d, FN %d) of %d interesting; reported %d (HQ %d); degraded %d/%d jobs",
		r.System, r.Environment, r.InterestingDiscarded(), r.IBOLossesInteresting(), r.FalseNegatives,
		r.InterestingArrivals, r.ReportedInteresting(), r.HighQInteresting, r.Degradations, r.JobsCompleted)
}
