package metrics

// Summary is the narrow per-device projection of Results that fleet-scale
// aggregation folds. A fleet run never retains per-device Results — each
// finished device is reduced to this fixed-size value, folded into streaming
// histograms/counters, and dropped, keeping RSS independent of fleet size.
//
// Fields split into two families with different merge semantics:
//
//   - float64 ratios/energies fold into histograms (distribution across the
//     fleet); float addition is non-associative, so any *sum* over these
//     must be folded in a fixed order to stay byte-identical across shard
//     counts (see fleet.Accumulator); and
//   - int counters, which are exact and associative, so partial sums over
//     any device grouping agree bit-for-bit.
type Summary struct {
	SimSeconds float64

	// Paper headline ratios, each in [0,1] (see the Results methods of the
	// same names for definitions).
	IBOFraction         float64
	DiscardedFraction   float64
	HighQualityShare    float64
	CaptureMissFraction float64

	// Energy accounting. WastedJoules is the store's regulation-loss
	// counter: harvest the device had to burn off while the store sat at
	// capacity. Analytic results (the ideal upper bound) leave it zero.
	HarvestedJoules float64
	ConsumedJoules  float64
	WastedJoules    float64

	// Exact counters.
	Captures             int
	CaptureMisses        int
	MissedInteresting    int
	Arrivals             int
	InterestingArrivals  int
	IBOLossesInteresting int
	FalseNegatives       int
	ReportedInteresting  int
	HighQInteresting     int
	JobsCompleted        int
	Degradations         int
	Brownouts            int
	TransientFaults      int
	MeasSamples          int
}

// Summarize projects full run results down to the fold interface.
func Summarize(r *Results) Summary {
	return Summary{
		SimSeconds:           r.SimSeconds,
		IBOFraction:          r.IBOFraction(),
		DiscardedFraction:    r.DiscardedFraction(),
		HighQualityShare:     r.HighQualityShare(),
		CaptureMissFraction:  r.CaptureMissFraction(),
		HarvestedJoules:      r.HarvestedJoules,
		ConsumedJoules:       r.ConsumedJoules,
		WastedJoules:         r.WastedJoules,
		Captures:             r.Captures,
		CaptureMisses:        r.CaptureMisses,
		MissedInteresting:    r.MissedInteresting,
		Arrivals:             r.Arrivals,
		InterestingArrivals:  r.InterestingArrivals,
		IBOLossesInteresting: r.IBOLossesInteresting(),
		FalseNegatives:       r.FalseNegatives,
		ReportedInteresting:  r.ReportedInteresting(),
		HighQInteresting:     r.HighQInteresting,
		JobsCompleted:        r.JobsCompleted,
		Degradations:         r.Degradations,
		Brownouts:            r.Brownouts,
		TransientFaults:      r.TransientFaults,
		MeasSamples:          r.MeasSamples,
	}
}
