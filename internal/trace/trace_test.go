package trace

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestConstant(t *testing.T) {
	c := Constant{P: 0.02}
	for _, tt := range []float64{0, 1, 1e6} {
		if got := c.Power(tt); got != 0.02 {
			t.Errorf("Power(%g) = %g, want 0.02", tt, got)
		}
	}
}

func TestSquareWave(t *testing.T) {
	s := SquareWave{High: 1, Low: 0.1, Period: 10, Duty: 0.3}
	cases := []struct {
		t, want float64
	}{
		{0, 1}, {2.9, 1}, {3.0, 0.1}, {9.9, 0.1}, {10.0, 1}, {12.5, 1}, {13.5, 0.1},
	}
	for _, c := range cases {
		if got := s.Power(c.t); got != c.want {
			t.Errorf("Power(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	// Negative times wrap.
	if got := s.Power(-9); got != 1 { // -9 mod 10 = 1, inside duty
		t.Errorf("Power(-9) = %g, want 1", got)
	}
	// Degenerate period returns High.
	if got := (SquareWave{High: 2, Period: 0}).Power(5); got != 2 {
		t.Errorf("degenerate SquareWave = %g, want 2", got)
	}
}

func TestScaled(t *testing.T) {
	s := Scaled{Base: Constant{P: 0.03}, Factor: 1.0 / 3}
	if got := s.Power(0); math.Abs(got-0.01) > 1e-15 {
		t.Errorf("Scaled = %g, want 0.01", got)
	}
}

func TestSampledInterpolation(t *testing.T) {
	s := &Sampled{Dt: 1, Samples: []float64{0, 10, 20}}
	cases := []struct {
		t, want float64
	}{
		{-5, 0}, {0, 0}, {0.5, 5}, {1, 10}, {1.25, 12.5}, {2, 20}, {99, 20},
	}
	for _, c := range cases {
		if got := s.Power(c.t); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Power(%g) = %g, want %g", c.t, got, c.want)
		}
	}
	if got := s.Duration(); got != 2 {
		t.Errorf("Duration = %g, want 2", got)
	}
	if got := (&Sampled{Dt: 1}).Power(3); got != 0 {
		t.Errorf("empty Sampled = %g, want 0", got)
	}
	if got := (&Sampled{Dt: 1, Samples: []float64{7}}).Power(3); got != 7 {
		t.Errorf("single-sample = %g, want 7", got)
	}
}

func TestGenerateSolarDeterministic(t *testing.T) {
	cfg := DefaultSolarConfig(3600, 42)
	a := GenerateSolar(cfg)
	b := GenerateSolar(cfg)
	if len(a.Samples) != len(b.Samples) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Samples), len(b.Samples))
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs: %g vs %g", i, a.Samples[i], b.Samples[i])
		}
	}
	c := GenerateSolar(DefaultSolarConfig(3600, 43))
	same := true
	for i := range a.Samples {
		if a.Samples[i] != c.Samples[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}

func TestGenerateSolarPhysicalBounds(t *testing.T) {
	cfg := DefaultSolarConfig(7200, 7)
	s := GenerateSolar(cfg)
	maxSeen := 0.0
	for i, p := range s.Samples {
		if p < 0 {
			t.Fatalf("negative power %g at sample %d", p, i)
		}
		if p > maxSeen {
			maxSeen = p
		}
	}
	// Clear-sky peak with noise headroom.
	if maxSeen > cfg.PeakPower*1.3 {
		t.Errorf("max power %g exceeds plausible peak %g", maxSeen, cfg.PeakPower*1.3)
	}
	if maxSeen < cfg.PeakPower*0.05 {
		t.Errorf("max power %g suspiciously low; generator broken?", maxSeen)
	}
}

func TestGenerateSolarNightIsDark(t *testing.T) {
	// The harness default stays inside daylight, so build an explicit
	// full-cycle configuration to check the night behaviour.
	cfg := DefaultSolarConfig(7200, 3)
	cfg.DayLength = 7200
	cfg.StartFraction = 0.15
	cfg.NoiseStd = 0
	s := GenerateSolar(cfg)
	// Night spans phase [DaylightFraction, 1); with StartFraction 0.15 and a
	// 7200 s day, night is t in [2520, 6120).
	for _, tt := range []float64{2600, 4000, 6000} {
		if got := s.Power(tt); got != 0 {
			t.Errorf("night power at t=%g is %g, want 0", tt, got)
		}
	}
}

func TestGenerateSolarValidation(t *testing.T) {
	bad := []SolarConfig{
		{PeakPower: 0, DayLength: 100, Duration: 10, SampleDt: 1, DaylightFraction: 0.5},
		{PeakPower: 1, DayLength: 0, Duration: 10, SampleDt: 1, DaylightFraction: 0.5},
		{PeakPower: 1, DayLength: 100, Duration: 0, SampleDt: 1, DaylightFraction: 0.5},
		{PeakPower: 1, DayLength: 100, Duration: 10, SampleDt: 0, DaylightFraction: 0.5},
		{PeakPower: 1, DayLength: 100, Duration: 10, SampleDt: 1, DaylightFraction: 0},
		{PeakPower: 1, DayLength: 100, Duration: 10, SampleDt: 1, DaylightFraction: 1.2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: GenerateSolar did not panic", i)
				}
			}()
			GenerateSolar(cfg)
		}()
	}
}

func TestMeanAndMaxPower(t *testing.T) {
	sq := SquareWave{High: 1, Low: 0, Period: 10, Duty: 0.5}
	mean := MeanPower(sq, 100, 0.1)
	if math.Abs(mean-0.5) > 0.02 {
		t.Errorf("MeanPower = %g, want ≈ 0.5", mean)
	}
	if got := MaxPower(sq, 100, 0.1); got != 1 {
		t.Errorf("MaxPower = %g, want 1", got)
	}
	if got := MeanPower(sq, 0, 1); got != 0 {
		t.Errorf("MeanPower over zero duration = %g, want 0", got)
	}
}

func TestGenerateEventsStructure(t *testing.T) {
	cfg := DefaultEventConfig(200, 60, 11)
	tr := GenerateEvents(cfg)
	if len(tr.Events) != 200 {
		t.Fatalf("generated %d events, want 200", len(tr.Events))
	}
	if err := tr.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	for i, e := range tr.Events {
		if e.Duration > cfg.MaxDuration+1e-9 {
			t.Errorf("event %d duration %g exceeds cap %g", i, e.Duration, cfg.MaxDuration)
		}
		if e.Duration < cfg.MinDuration-1e-9 {
			t.Errorf("event %d duration %g below min %g", i, e.Duration, cfg.MinDuration)
		}
	}
	// Roughly half should be interesting.
	n := tr.CountInteresting()
	if n < 60 || n > 140 {
		t.Errorf("interesting events = %d of 200, want ≈ 100", n)
	}
	if tr.InterestingSeconds() <= 0 {
		t.Error("InterestingSeconds = 0")
	}
}

func TestGenerateEventsDeterministic(t *testing.T) {
	a := GenerateEvents(DefaultEventConfig(50, 60, 5))
	b := GenerateEvents(DefaultEventConfig(50, 60, 5))
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestEnvironmentKnobChangesDurations(t *testing.T) {
	// More Crowded (600 s cap) must have a longer mean event duration than
	// Less Crowded (20 s cap): this is the paper's environment knob.
	more := GenerateEvents(DefaultEventConfig(300, 600, 9))
	less := GenerateEvents(DefaultEventConfig(300, 20, 9))
	meanDur := func(tr *EventTrace) float64 {
		s := 0.0
		for _, e := range tr.Events {
			s += e.Duration
		}
		return s / float64(len(tr.Events))
	}
	if meanDur(more) <= meanDur(less) {
		t.Errorf("mean durations: more=%g ≤ less=%g", meanDur(more), meanDur(less))
	}
}

func TestActiveAt(t *testing.T) {
	tr := &EventTrace{Events: []Event{
		{Start: 10, Duration: 5, Interesting: true},
		{Start: 20, Duration: 2},
	}}
	if _, ok := tr.ActiveAt(5); ok {
		t.Error("ActiveAt(5) reported an event before any start")
	}
	e, ok := tr.ActiveAt(12)
	if !ok || !e.Interesting {
		t.Errorf("ActiveAt(12) = (%+v, %v), want the interesting event", e, ok)
	}
	if _, ok := tr.ActiveAt(15); ok {
		t.Error("ActiveAt(15) reported an event at its exclusive end")
	}
	e, ok = tr.ActiveAt(21)
	if !ok || e.Interesting {
		t.Errorf("ActiveAt(21) = (%+v, %v), want the uninteresting event", e, ok)
	}
	if _, ok := tr.ActiveAt(100); ok {
		t.Error("ActiveAt(100) reported an event after the trace")
	}
	if got := tr.Duration(); got != 22 {
		t.Errorf("Duration = %g, want 22", got)
	}
	if got := (&EventTrace{}).Duration(); got != 0 {
		t.Errorf("empty Duration = %g, want 0", got)
	}
}

func TestGenerateEventsValidation(t *testing.T) {
	bad := []EventConfig{
		{N: 0, MaxDuration: 10, MedianDuration: 2, MeanInterarrival: 5},
		{N: 5, MaxDuration: 0, MedianDuration: 2, MeanInterarrival: 5},
		{N: 5, MaxDuration: 10, MedianDuration: 0, MeanInterarrival: 5},
		{N: 5, MaxDuration: 10, MedianDuration: 2, MeanInterarrival: 0},
		{N: 5, MaxDuration: 10, MedianDuration: 2, MeanInterarrival: 5, InterestingProb: 2},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: GenerateEvents did not panic", i)
				}
			}()
			GenerateEvents(cfg)
		}()
	}
}

func TestValidateCatchesBrokenTraces(t *testing.T) {
	overlap := &EventTrace{Events: []Event{{Start: 0, Duration: 10}, {Start: 5, Duration: 1}}}
	if err := overlap.Validate(); err == nil {
		t.Error("Validate accepted overlapping events")
	}
	nonpos := &EventTrace{Events: []Event{{Start: 0, Duration: 0}}}
	if err := nonpos.Validate(); err == nil {
		t.Error("Validate accepted zero-duration event")
	}
}

func TestPowerRoundTrip(t *testing.T) {
	s := GenerateSolar(DefaultSolarConfig(120, 1))
	var buf bytes.Buffer
	if err := WritePower(&buf, s); err != nil {
		t.Fatalf("WritePower: %v", err)
	}
	back, err := ReadPower(&buf)
	if err != nil {
		t.Fatalf("ReadPower: %v", err)
	}
	if back.Dt != s.Dt || len(back.Samples) != len(s.Samples) {
		t.Fatalf("round trip mismatch: dt %g/%g len %d/%d", back.Dt, s.Dt, len(back.Samples), len(s.Samples))
	}
	for i := range s.Samples {
		if math.Abs(back.Samples[i]-s.Samples[i]) > 1e-12 {
			t.Fatalf("sample %d differs", i)
		}
	}
}

func TestReadPowerRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"kind":"wrong","dt_seconds":1,"samples_watts":[1]}`,
		`{"kind":"sampled-power","dt_seconds":0,"samples_watts":[1]}`,
		`{"kind":"sampled-power","dt_seconds":1,"samples_watts":[-1]}`,
		`not json`,
	}
	for i, c := range cases {
		if _, err := ReadPower(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadPower accepted %q", i, c)
		}
	}
}

func TestEventsRoundTrip(t *testing.T) {
	tr := GenerateEvents(DefaultEventConfig(20, 60, 3))
	var buf bytes.Buffer
	if err := WriteEvents(&buf, tr); err != nil {
		t.Fatalf("WriteEvents: %v", err)
	}
	back, err := ReadEvents(&buf)
	if err != nil {
		t.Fatalf("ReadEvents: %v", err)
	}
	if len(back.Events) != len(tr.Events) {
		t.Fatalf("lengths differ")
	}
	for i := range tr.Events {
		if back.Events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestReadEventsRejectsBadInput(t *testing.T) {
	cases := []string{
		`{"kind":"wrong","events":[]}`,
		`{"kind":"events","events":[{"Start":0,"Duration":0}]}`,
		`garbage`,
	}
	for i, c := range cases {
		if _, err := ReadEvents(strings.NewReader(c)); err == nil {
			t.Errorf("case %d: ReadEvents accepted %q", i, c)
		}
	}
}

// Property: generated event traces always validate and respect caps.
func TestPropertyEventsValid(t *testing.T) {
	f := func(seed int64, nRaw, maxRaw uint8) bool {
		n := int(nRaw)%100 + 1
		maxDur := float64(maxRaw%100) + 5
		tr := GenerateEvents(DefaultEventConfig(n, maxDur, seed))
		if err := tr.Validate(); err != nil {
			return false
		}
		for _, e := range tr.Events {
			if e.Duration > maxDur {
				return false
			}
		}
		return len(tr.Events) == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: ActiveAt agrees with a linear scan.
func TestPropertyActiveAtMatchesScan(t *testing.T) {
	f := func(seed int64, tRaw uint16) bool {
		tr := GenerateEvents(DefaultEventConfig(40, 30, seed))
		tt := math.Mod(float64(tRaw), tr.Duration())
		want, wantOK := Event{}, false
		for _, e := range tr.Events {
			if e.Start <= tt && tt < e.End() {
				want, wantOK = e, true
				break
			}
		}
		got, ok := tr.ActiveAt(tt)
		return ok == wantOK && got == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
