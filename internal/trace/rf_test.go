package trace

import "testing"

func TestGenerateRFDeterministicAndBounded(t *testing.T) {
	cfg := DefaultRFConfig(600, 5)
	a := GenerateRF(cfg)
	b := GenerateRF(cfg)
	if len(a.Samples) != len(b.Samples) {
		t.Fatal("lengths differ")
	}
	for i := range a.Samples {
		if a.Samples[i] != b.Samples[i] {
			t.Fatalf("sample %d differs", i)
		}
	}
	maxAllowed := cfg.ActivePower * (1 + cfg.FadingDepth)
	for i, p := range a.Samples {
		if p < 0 || p > maxAllowed+1e-12 {
			t.Fatalf("sample %d = %g outside [0, %g]", i, p, maxAllowed)
		}
	}
}

func TestGenerateRFIsBursty(t *testing.T) {
	cfg := DefaultRFConfig(3000, 7)
	s := GenerateRF(cfg)
	// Count samples near the floor vs near the active level: both regimes
	// must be visited substantially.
	low, high := 0, 0
	for _, p := range s.Samples {
		if p < cfg.ActivePower/4 {
			low++
		} else {
			high++
		}
	}
	n := len(s.Samples)
	if low < n/10 || high < n/20 {
		t.Errorf("burstiness broken: %d low / %d high of %d samples", low, high, n)
	}
	// The long-run active share should be near MeanActive/(MeanActive+MeanIdle) = 0.25.
	share := float64(high) / float64(n)
	if share < 0.1 || share > 0.45 {
		t.Errorf("active share = %.2f, want ≈ 0.25", share)
	}
}

func TestGenerateRFValidation(t *testing.T) {
	bad := []RFConfig{
		{ActivePower: 0, FloorPower: 0, MeanActive: 1, MeanIdle: 1, Duration: 10, SampleDt: 1},
		{ActivePower: 0.01, FloorPower: 0.02, MeanActive: 1, MeanIdle: 1, Duration: 10, SampleDt: 1}, // floor > active
		{ActivePower: 0.01, FloorPower: 0, MeanActive: 0, MeanIdle: 1, Duration: 10, SampleDt: 1},
		{ActivePower: 0.01, FloorPower: 0, MeanActive: 1, MeanIdle: 1, Duration: 0, SampleDt: 1},
		{ActivePower: 0.01, FloorPower: 0, MeanActive: 1, MeanIdle: 1, Duration: 10, SampleDt: 1, FadingDepth: 1},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: GenerateRF did not panic", i)
				}
			}()
			GenerateRF(cfg)
		}()
	}
}

func TestRFTraceDrivesSimulatorShapedLikeRF(t *testing.T) {
	// Mean power of the default profile: 0.25·40 mW + 0.75·0.5 mW ≈ 10 mW.
	cfg := DefaultRFConfig(5000, 9)
	mean := MeanPower(GenerateRF(cfg), cfg.Duration, 1)
	if mean < 0.005 || mean > 0.02 {
		t.Errorf("mean RF power = %g W, want ≈ 0.010", mean)
	}
}
