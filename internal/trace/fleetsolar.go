package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sync"
)

// FleetSolar derives per-device solar traces that share one regional sky.
// All devices in a fleet see the same diurnal envelope and the same regional
// cloud process (an Ornstein–Uhlenbeck series seeded by the fleet seed);
// each device blends that with its own local cloud draw and sensor noise
// from a per-device seed. Correlation sets the blend: 1 → every device sees
// identical attenuation (one sky), 0 → fully independent clouds.
//
// Determinism is structural: the regional series is a pure function of the
// base config's Seed, consumed strictly in sample order and extended lazily
// under a mutex, and each device trace is a pure function of (config,
// correlation, device seed). Traces are therefore invariant to the order in
// which devices are generated — shard layout and worker count cannot change
// a single sample.
type FleetSolar struct {
	cfg  SolarConfig
	corr float64

	mu  sync.Mutex
	rng *rand.Rand
	x   float64   // regional OU state after the last generated sample
	reg []float64 // regional attenuation samples, one per SampleDt
}

// NewFleetSolar builds the shared generator. cfg.Seed seeds the regional
// sky; cfg.Duration is the default per-device trace length (Device may ask
// for longer — the regional series extends on demand). It panics on a
// non-physical configuration, mirroring GenerateSolar.
func NewFleetSolar(cfg SolarConfig, correlation float64) *FleetSolar {
	if cfg.PeakPower <= 0 || cfg.DayLength <= 0 || cfg.Duration <= 0 || cfg.SampleDt <= 0 {
		panic(fmt.Sprintf("trace: fleet solar config must have positive peak/day/duration/dt, got %+v", cfg))
	}
	if cfg.DaylightFraction <= 0 || cfg.DaylightFraction > 1 {
		panic(fmt.Sprintf("trace: daylight fraction must be in (0,1], got %g", cfg.DaylightFraction))
	}
	if correlation < 0 || correlation > 1 {
		panic(fmt.Sprintf("trace: correlation must be in [0,1], got %g", correlation))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &FleetSolar{cfg: cfg, corr: correlation, rng: rng, x: rng.NormFloat64()}
}

// regional returns at least n samples of the shared attenuation series,
// extending it under the lock. Existing samples are never rewritten, and the
// RNG is consumed strictly sequentially, so sample j is identical no matter
// which device's request forced the extension.
func (f *FleetSolar) regional(n int) []float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	tau := f.cfg.CloudTau
	if tau <= 0 {
		tau = 1
	}
	sigma := math.Sqrt(2 / tau)
	dt := f.cfg.SampleDt
	for len(f.reg) < n {
		f.x += (-f.x/tau)*dt + sigma*math.Sqrt(dt)*f.rng.NormFloat64()
		atten := 1 - f.cfg.CloudDepth*sigmoid(f.x-0.5)
		if atten < 0.02 {
			atten = 0.02
		}
		f.reg = append(f.reg, atten)
	}
	return f.reg
}

// Device generates one device's sampled trace from its derived seed,
// covering at least the given duration (≤ 0 → the config default). Device
// event traces vary in length, so each device asks for exactly the horizon
// its run needs; the shared envelope and regional sky are functions of
// absolute time, identical across devices wherever their grids overlap.
// Safe for concurrent use.
func (f *FleetSolar) Device(seed int64, duration float64) *Sampled {
	cfg := f.cfg
	if duration > 0 {
		cfg.Duration = duration
	}
	n := int(cfg.Duration/cfg.SampleDt) + 1
	reg := f.regional(n)

	rng := rand.New(rand.NewSource(seed))
	tau := cfg.CloudTau
	if tau <= 0 {
		tau = 1
	}
	sigma := math.Sqrt(2 / tau)
	x := rng.NormFloat64() // local OU cloud state
	samples := make([]float64, n)
	for i := 0; i < n; i++ {
		t := float64(i) * cfg.SampleDt
		phase := math.Mod(t/cfg.DayLength+cfg.StartFraction, 1)
		env := 0.0
		if phase < cfg.DaylightFraction {
			env = math.Pow(math.Sin(math.Pi*phase/cfg.DaylightFraction), 1.2)
		}
		dt := cfg.SampleDt
		x += (-x/tau)*dt + sigma*math.Sqrt(dt)*rng.NormFloat64()
		local := 1 - cfg.CloudDepth*sigmoid(x-0.5)
		if local < 0.02 {
			local = 0.02
		}
		atten := f.corr*reg[i] + (1-f.corr)*local
		noise := 1 + cfg.NoiseStd*rng.NormFloat64()
		if noise < 0 {
			noise = 0
		}
		p := cfg.PeakPower * env * atten * noise
		if p < 0 {
			p = 0
		}
		samples[i] = p
	}
	return &Sampled{Dt: cfg.SampleDt, Samples: samples}
}
