// Package trace generates the two environmental inputs the paper's
// evaluation feeds its experiments (§6.2–6.4): a harvestable-power trace and
// a sensing-event activity trace.
//
// The paper drives a programmable supply from a real solar measurement
// dataset (Gorlatova et al. [32]) and draws event durations/interarrivals
// from a surveillance video dataset (VIRAT [67]). Neither dataset ships with
// this reproduction, so both are substituted with synthetic generators that
// preserve the properties the system under test actually reacts to:
//
//   - input power that varies over orders of magnitude on two time scales —
//     a slow diurnal envelope and fast cloud-driven attenuation (an
//     Ornstein–Uhlenbeck process), plus sensor noise; and
//   - alternating busy/idle event activity with heavy-tailed (log-normal)
//     event durations capped by the per-environment maximum (Table 1:
//     600/60/20 s) and exponential interarrival gaps.
//
// All generation is deterministic given a seed.
package trace

import (
	"fmt"
	"math"
	"math/rand"
)

// PowerTrace yields harvestable input power (watts) as a function of
// simulation time (seconds).
type PowerTrace interface {
	Power(t float64) float64
}

// Constant is a fixed-power trace, useful in tests and calibration.
type Constant struct{ P float64 }

// Power returns the constant power level.
func (c Constant) Power(float64) float64 { return c.P }

// SquareWave alternates between High (for Duty·Period) and Low.
type SquareWave struct {
	High, Low float64
	Period    float64
	Duty      float64 // fraction of the period at High, in [0,1]
}

// Power returns High during the duty window of each period, Low otherwise.
func (s SquareWave) Power(t float64) float64 {
	if s.Period <= 0 {
		return s.High
	}
	phase := math.Mod(t, s.Period)
	if phase < 0 {
		phase += s.Period
	}
	if phase < s.Duty*s.Period {
		return s.High
	}
	return s.Low
}

// Scaled multiplies another trace by a constant factor — used to model
// harvester cell-count scaling (Fig 14 sweeps cells; power scales linearly
// with the number of cells).
type Scaled struct {
	Base   PowerTrace
	Factor float64
}

// Power returns the scaled base power.
func (s Scaled) Power(t float64) float64 { return s.Base.Power(t) * s.Factor }

// Sampled is a trace backed by uniformly spaced samples with linear
// interpolation; times before the first or after the last sample clamp.
type Sampled struct {
	Dt      float64
	Samples []float64
}

// Power interpolates the sample array at time t.
func (s *Sampled) Power(t float64) float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	if len(s.Samples) == 1 || t <= 0 {
		return s.Samples[0]
	}
	x := t / s.Dt
	i := int(x)
	if i >= len(s.Samples)-1 {
		return s.Samples[len(s.Samples)-1]
	}
	frac := x - float64(i)
	return s.Samples[i]*(1-frac) + s.Samples[i+1]*frac
}

// Duration returns the time span covered by the samples.
func (s *Sampled) Duration() float64 {
	if len(s.Samples) == 0 {
		return 0
	}
	return float64(len(s.Samples)-1) * s.Dt
}

// SolarConfig parameterises the synthetic solar generator.
type SolarConfig struct {
	// PeakPower is the clear-sky noon output of the reference harvester
	// (the paper's 6-cell array), in watts.
	PeakPower float64
	// DayLength is the full day/night cycle length in seconds. Experiments
	// use a compressed day so multi-hour behaviour fits a tractable run.
	DayLength float64
	// DaylightFraction is the fraction of the cycle with sun above the
	// horizon (default 0.5).
	DaylightFraction float64
	// StartFraction is where in the cycle t=0 falls (0 = sunrise). The
	// default 0.15 starts mid-morning so experiments begin with harvest.
	StartFraction float64
	// CloudTau is the mean-reversion time constant of the cloud process in
	// seconds; CloudDepth scales how strongly clouds attenuate.
	CloudTau, CloudDepth float64
	// NoiseStd is multiplicative sensor/converter noise (fraction).
	NoiseStd float64
	// Duration and SampleDt control the precomputed sample grid.
	Duration, SampleDt float64
	// Seed makes the trace reproducible.
	Seed int64
}

// DefaultSolarConfig returns the configuration used by the experiment
// harness: 250 mW clear-sky peak for the reference 6-cell array, a 2-hour
// compressed day, 40 s cloud correlation time. Cloud attenuation routinely
// pulls the delivered power into the single-digit-milliwatt range, so the
// trace spans the two-orders-of-magnitude dynamic range the paper's
// evaluation exercises.
func DefaultSolarConfig(duration float64, seed int64) SolarConfig {
	return SolarConfig{
		PeakPower: 0.100,
		// The experiment runs inside one daylight period (a morning ramp
		// toward noon): the paper's IBO regime is *low* harvest, not the
		// zero harvest of night, during which no scheduler can act. The
		// day length scales with the experiment so short calibration runs
		// and paper-scale runs see the same envelope shape.
		DayLength:        4 * duration,
		DaylightFraction: 0.5,
		StartFraction:    0.04,
		CloudTau:         60,
		CloudDepth:       0.95,
		NoiseStd:         0.03,
		Duration:         duration,
		SampleDt:         1.0,
		Seed:             seed,
	}
}

// GenerateSolar produces a sampled solar trace from cfg.
// It panics on a non-physical configuration.
func GenerateSolar(cfg SolarConfig) *Sampled {
	if cfg.PeakPower <= 0 || cfg.DayLength <= 0 || cfg.Duration <= 0 || cfg.SampleDt <= 0 {
		panic(fmt.Sprintf("trace: solar config must have positive peak/day/duration/dt, got %+v", cfg))
	}
	if cfg.DaylightFraction <= 0 || cfg.DaylightFraction > 1 {
		panic(fmt.Sprintf("trace: daylight fraction must be in (0,1], got %g", cfg.DaylightFraction))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.Duration/cfg.SampleDt) + 1
	samples := make([]float64, n)

	// Ornstein–Uhlenbeck cloud state, mean 0, stationary sd ≈ 1.
	x := rng.NormFloat64()
	tau := cfg.CloudTau
	if tau <= 0 {
		tau = 1
	}
	sigma := math.Sqrt(2 / tau)
	for i := 0; i < n; i++ {
		t := float64(i) * cfg.SampleDt
		phase := math.Mod(t/cfg.DayLength+cfg.StartFraction, 1)
		env := 0.0
		if phase < cfg.DaylightFraction {
			env = math.Pow(math.Sin(math.Pi*phase/cfg.DaylightFraction), 1.2)
		}
		// Advance the OU process.
		dt := cfg.SampleDt
		x += (-x/tau)*dt + sigma*math.Sqrt(dt)*rng.NormFloat64()
		atten := 1 - cfg.CloudDepth*sigmoid(x-0.5)
		if atten < 0.02 {
			atten = 0.02
		}
		noise := 1 + cfg.NoiseStd*rng.NormFloat64()
		if noise < 0 {
			noise = 0
		}
		p := cfg.PeakPower * env * atten * noise
		if p < 0 {
			p = 0
		}
		samples[i] = p
	}
	return &Sampled{Dt: cfg.SampleDt, Samples: samples}
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// MeanPower returns the average of a trace over [0, duration] sampled at dt,
// a convenience for calibration and for deriving the PZI oracle threshold.
func MeanPower(tr PowerTrace, duration, dt float64) float64 {
	if duration <= 0 || dt <= 0 {
		return 0
	}
	sum, n := 0.0, 0
	for t := 0.0; t <= duration; t += dt {
		sum += tr.Power(t)
		n++
	}
	return sum / float64(n)
}

// MaxPower returns the maximum of a trace over [0, duration] sampled at dt.
// The PZI (idealised Protean/Zygarde) baseline derives its threshold from
// this oracular value (§6.1).
func MaxPower(tr PowerTrace, duration, dt float64) float64 {
	max := 0.0
	for t := 0.0; t <= duration; t += dt {
		if p := tr.Power(t); p > max {
			max = p
		}
	}
	return max
}
