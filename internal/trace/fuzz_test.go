package trace

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReadEvents throws arbitrary bytes at the event-trace parser: it must
// never panic, and anything it accepts must validate and round-trip.
func FuzzReadEvents(f *testing.F) {
	var seed bytes.Buffer
	if err := WriteEvents(&seed, GenerateEvents(DefaultEventConfig(5, 30, 1))); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"kind":"events","events":[{"Start":0,"Duration":-1}]}`)
	f.Add(`not json at all`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadEvents(strings.NewReader(data))
		if err != nil {
			return
		}
		if verr := tr.Validate(); verr != nil {
			t.Fatalf("accepted trace fails Validate: %v", verr)
		}
		var buf bytes.Buffer
		if werr := WriteEvents(&buf, tr); werr != nil {
			t.Fatalf("round-trip write failed: %v", werr)
		}
		back, rerr := ReadEvents(&buf)
		if rerr != nil {
			t.Fatalf("round-trip read failed: %v", rerr)
		}
		if len(back.Events) != len(tr.Events) {
			t.Fatalf("round trip changed event count")
		}
	})
}

// FuzzReadPower: same contract for the power-trace parser.
func FuzzReadPower(f *testing.F) {
	var seed bytes.Buffer
	if err := WritePower(&seed, &Sampled{Dt: 1, Samples: []float64{0, 1, 2}}); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.String())
	f.Add(`{"kind":"sampled-power","dt_seconds":0,"samples_watts":[1]}`)
	f.Fuzz(func(t *testing.T, data string) {
		tr, err := ReadPower(strings.NewReader(data))
		if err != nil {
			return
		}
		if tr.Dt <= 0 {
			t.Fatal("accepted non-positive dt")
		}
		for _, s := range tr.Samples {
			if s < 0 {
				t.Fatal("accepted negative power")
			}
		}
		// Sampling anywhere must be finite and non-negative.
		for _, at := range []float64{-1, 0, 0.5, 1e9} {
			if p := tr.Power(at); p < 0 {
				t.Fatalf("negative power %g at t=%g", p, at)
			}
		}
	})
}
