package trace

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Event is one contiguous burst of sensing activity. While an event is
// active, captured frames differ from the background and pass the cheap
// pre-filter into the input buffer. Interesting marks events the application
// wants reported (the paper's evaluation: frames containing people).
type Event struct {
	Start       float64 // seconds
	Duration    float64 // seconds
	Interesting bool
}

// End returns the event's end time.
func (e Event) End() float64 { return e.Start + e.Duration }

// EventTrace is a time-ordered, non-overlapping sequence of events.
type EventTrace struct {
	Events []Event
}

// ActiveAt returns the event active at time t, if any.
func (tr *EventTrace) ActiveAt(t float64) (Event, bool) {
	i := sort.Search(len(tr.Events), func(i int) bool {
		return tr.Events[i].End() > t
	})
	if i < len(tr.Events) && tr.Events[i].Start <= t {
		return tr.Events[i], true
	}
	return Event{}, false
}

// Duration returns the end time of the last event (the natural horizon of
// an experiment over this trace).
func (tr *EventTrace) Duration() float64 {
	if len(tr.Events) == 0 {
		return 0
	}
	return tr.Events[len(tr.Events)-1].End()
}

// CountInteresting returns how many events are interesting.
func (tr *EventTrace) CountInteresting() int {
	n := 0
	for _, e := range tr.Events {
		if e.Interesting {
			n++
		}
	}
	return n
}

// InterestingSeconds sums the durations of interesting events — an upper
// bound on the interesting frames a device capturing at 1 FPS could see.
func (tr *EventTrace) InterestingSeconds() float64 {
	s := 0.0
	for _, e := range tr.Events {
		if e.Interesting {
			s += e.Duration
		}
	}
	return s
}

// EventConfig parameterises the synthetic event generator.
//
// The paper "modeled sensing events in terms of their durations and
// interarrival times" drawn from a surveillance dataset, generating "multiple
// unique sensing environments using limits on the event durations" (§6.4).
// MaxDuration is that limit: 600 s (More Crowded), 60 s (Crowded), 20 s
// (Less Crowded) in Table 1.
type EventConfig struct {
	N                int     // number of events to generate
	MaxDuration      float64 // hard cap on event duration (the environment knob)
	MedianDuration   float64 // median of the log-normal duration distribution
	DurationSigma    float64 // log-space sigma of the duration distribution
	MinDuration      float64 // lower clamp on durations
	MeanInterarrival float64 // mean of the exponential gap between events
	MinInterarrival  float64 // lower clamp on gaps
	InterestingProb  float64 // probability an event is interesting
	Seed             int64
}

// DefaultEventConfig returns the generator settings used by the experiment
// harness for a given environment duration cap.
func DefaultEventConfig(n int, maxDuration float64, seed int64) EventConfig {
	return EventConfig{
		N:           n,
		MaxDuration: maxDuration,
		// Surveillance-style activity: most events are seconds long with a
		// heavy log-normal tail. The per-environment MaxDuration cap
		// truncates that tail — long "crowded" episodes survive only in
		// the more-crowded environment — which is how the paper's three
		// environments differ (§6.4).
		MedianDuration:   8,
		DurationSigma:    1.5,
		MinDuration:      1.0,
		MeanInterarrival: 5,
		MinInterarrival:  2,
		InterestingProb:  0.5,
		Seed:             seed,
	}
}

// GenerateEvents produces a deterministic event trace from cfg.
// It panics on invalid configuration.
func GenerateEvents(cfg EventConfig) *EventTrace {
	if cfg.N <= 0 {
		panic(fmt.Sprintf("trace: event count must be positive, got %d", cfg.N))
	}
	if cfg.MaxDuration <= 0 || cfg.MedianDuration <= 0 || cfg.MeanInterarrival <= 0 {
		panic(fmt.Sprintf("trace: event durations/interarrivals must be positive, got %+v", cfg))
	}
	if cfg.InterestingProb < 0 || cfg.InterestingProb > 1 {
		panic(fmt.Sprintf("trace: interesting probability must be in [0,1], got %g", cfg.InterestingProb))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	events := make([]Event, 0, cfg.N)
	t := 0.0
	mu := math.Log(cfg.MedianDuration)
	for i := 0; i < cfg.N; i++ {
		gap := rng.ExpFloat64() * cfg.MeanInterarrival
		if gap < cfg.MinInterarrival {
			gap = cfg.MinInterarrival
		}
		t += gap
		d := math.Exp(mu + cfg.DurationSigma*rng.NormFloat64())
		if d < cfg.MinDuration {
			d = cfg.MinDuration
		}
		if d > cfg.MaxDuration {
			d = cfg.MaxDuration
		}
		events = append(events, Event{
			Start:       t,
			Duration:    d,
			Interesting: rng.Float64() < cfg.InterestingProb,
		})
		t += d
	}
	return &EventTrace{Events: events}
}

// Validate checks that the trace is time-ordered and non-overlapping; the
// simulator assumes both.
func (tr *EventTrace) Validate() error {
	prevEnd := math.Inf(-1)
	for i, e := range tr.Events {
		if e.Duration <= 0 {
			return fmt.Errorf("trace: event %d has non-positive duration %g", i, e.Duration)
		}
		if e.Start < prevEnd {
			return fmt.Errorf("trace: event %d starts at %g before previous end %g", i, e.Start, prevEnd)
		}
		prevEnd = e.End()
	}
	return nil
}
