package trace

import (
	"encoding/json"
	"fmt"
	"io"
)

// File formats: traces serialise to JSON so cmd/tracegen can emit them and
// experiments can replay externally supplied traces (e.g. a real solar
// dataset converted offline).

type powerFile struct {
	Kind    string    `json:"kind"` // always "sampled-power"
	Dt      float64   `json:"dt_seconds"`
	Samples []float64 `json:"samples_watts"`
}

// WritePower serialises a sampled power trace as JSON.
func WritePower(w io.Writer, s *Sampled) error {
	enc := json.NewEncoder(w)
	return enc.Encode(powerFile{Kind: "sampled-power", Dt: s.Dt, Samples: s.Samples})
}

// ReadPower deserialises a sampled power trace.
func ReadPower(r io.Reader) (*Sampled, error) {
	var f powerFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decoding power trace: %w", err)
	}
	if f.Kind != "sampled-power" {
		return nil, fmt.Errorf("trace: unexpected kind %q, want sampled-power", f.Kind)
	}
	if f.Dt <= 0 {
		return nil, fmt.Errorf("trace: non-positive sample interval %g", f.Dt)
	}
	for i, s := range f.Samples {
		if s < 0 {
			return nil, fmt.Errorf("trace: negative power %g at sample %d", s, i)
		}
	}
	return &Sampled{Dt: f.Dt, Samples: f.Samples}, nil
}

type eventFile struct {
	Kind   string  `json:"kind"` // always "events"
	Events []Event `json:"events"`
}

// WriteEvents serialises an event trace as JSON.
func WriteEvents(w io.Writer, tr *EventTrace) error {
	enc := json.NewEncoder(w)
	return enc.Encode(eventFile{Kind: "events", Events: tr.Events})
}

// ReadEvents deserialises and validates an event trace.
func ReadEvents(r io.Reader) (*EventTrace, error) {
	var f eventFile
	if err := json.NewDecoder(r).Decode(&f); err != nil {
		return nil, fmt.Errorf("trace: decoding event trace: %w", err)
	}
	if f.Kind != "events" {
		return nil, fmt.Errorf("trace: unexpected kind %q, want events", f.Kind)
	}
	tr := &EventTrace{Events: f.Events}
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	return tr, nil
}
