package trace

import (
	"fmt"
	"math/rand"
)

// RFConfig parameterises the synthetic RF-harvesting generator. RF power
// (from a reader, a base station, or ambient transmitters — the WISP/Moo
// class of devices the paper cites) behaves very differently from solar:
// it is bursty, switching between a strong near-field level while a
// transmitter is active and a weak ambient floor otherwise, with rapid
// fading wiggle on top.
type RFConfig struct {
	// ActivePower is the harvested power while a transmitter is active;
	// FloorPower the ambient level otherwise (watts).
	ActivePower, FloorPower float64
	// MeanActive / MeanIdle are the exponential means of the transmitter
	// duty cycle, in seconds.
	MeanActive, MeanIdle float64
	// FadingDepth in [0,1) scales multiplicative fast fading.
	FadingDepth float64
	// Duration and SampleDt control the precomputed sample grid.
	Duration, SampleDt float64
	Seed               int64
}

// DefaultRFConfig returns an RF profile with 40 mW active bursts over a
// 0.5 mW ambient floor, ~20 s bursts every ~60 s.
func DefaultRFConfig(duration float64, seed int64) RFConfig {
	return RFConfig{
		ActivePower: 0.040,
		FloorPower:  0.0005,
		MeanActive:  20,
		MeanIdle:    60,
		FadingDepth: 0.5,
		Duration:    duration,
		SampleDt:    0.5,
		Seed:        seed,
	}
}

// GenerateRF produces a sampled RF-harvest trace from cfg.
// It panics on a non-physical configuration.
func GenerateRF(cfg RFConfig) *Sampled {
	if cfg.ActivePower <= 0 || cfg.FloorPower < 0 || cfg.ActivePower < cfg.FloorPower {
		panic(fmt.Sprintf("trace: RF powers must satisfy active ≥ floor ≥ 0, got %g/%g",
			cfg.ActivePower, cfg.FloorPower))
	}
	if cfg.MeanActive <= 0 || cfg.MeanIdle <= 0 || cfg.Duration <= 0 || cfg.SampleDt <= 0 {
		panic(fmt.Sprintf("trace: RF durations must be positive, got %+v", cfg))
	}
	if cfg.FadingDepth < 0 || cfg.FadingDepth >= 1 {
		panic(fmt.Sprintf("trace: fading depth must be in [0,1), got %g", cfg.FadingDepth))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := int(cfg.Duration/cfg.SampleDt) + 1
	samples := make([]float64, n)

	active := rng.Float64() < cfg.MeanActive/(cfg.MeanActive+cfg.MeanIdle)
	var left float64
	nextPhase := func() {
		if active {
			left = rng.ExpFloat64() * cfg.MeanActive
		} else {
			left = rng.ExpFloat64() * cfg.MeanIdle
		}
	}
	nextPhase()
	for i := 0; i < n; i++ {
		left -= cfg.SampleDt
		if left <= 0 {
			active = !active
			nextPhase()
		}
		p := cfg.FloorPower
		if active {
			p = cfg.ActivePower
		}
		// Fast Rayleigh-ish fading: multiplicative wiggle in
		// [1−depth, 1+depth].
		p *= 1 + cfg.FadingDepth*(2*rng.Float64()-1)
		if p < 0 {
			p = 0
		}
		samples[i] = p
	}
	return &Sampled{Dt: cfg.SampleDt, Samples: samples}
}
