package circuit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCelsiusToKelvin(t *testing.T) {
	if got := CelsiusToKelvin(25); got != 298.15 {
		t.Errorf("CelsiusToKelvin(25) = %g, want 298.15", got)
	}
}

func TestDiodeRoundTrip(t *testing.T) {
	d := Diode{ISat: 2e-9}
	for _, i := range []float64{1e-6, 1e-4, 1e-2} {
		v := d.Voltage(i, 298.15)
		back := d.Current(v, 298.15)
		if math.Abs(back-i)/i > 1e-9 {
			t.Errorf("round trip current %g -> %g", i, back)
		}
	}
}

func TestDiodeVoltageMonotonicInCurrent(t *testing.T) {
	d := Diode{ISat: 2e-9}
	prev := -1.0
	for i := 1e-7; i < 1; i *= 3 {
		v := d.Voltage(i, 310)
		if v <= prev {
			t.Errorf("voltage not increasing at I=%g: %g <= %g", i, v, prev)
		}
		prev = v
	}
}

func TestDiodeOffAtNonPositiveCurrent(t *testing.T) {
	d := Diode{ISat: 2e-9}
	if v := d.Voltage(0, 300); v != 0 {
		t.Errorf("Voltage(0) = %g, want 0", v)
	}
	if v := d.Voltage(-1e-3, 300); v != 0 {
		t.Errorf("Voltage(<0) = %g, want 0", v)
	}
}

func TestADCCodeAndVoltage(t *testing.T) {
	a := ADC{Bits: 8, VMax: 0.6}
	if a.Levels() != 255 {
		t.Fatalf("Levels = %d, want 255", a.Levels())
	}
	cases := []struct {
		v    float64
		code uint8
	}{
		{-0.1, 0}, {0, 0}, {0.6, 255}, {1.2, 255}, {0.3, 128} /* 0.3/0.6*255 = 127.5 → round 128 */}
	for _, c := range cases {
		if got := a.Code(c.v); got != c.code {
			t.Errorf("Code(%g) = %d, want %d", c.v, got, c.code)
		}
	}
	if got := a.Voltage(255); got != 0.6 {
		t.Errorf("Voltage(255) = %g, want 0.6", got)
	}
	if got := a.Voltage(0); got != 0 {
		t.Errorf("Voltage(0) = %g, want 0", got)
	}
}

func TestNewValidation(t *testing.T) {
	bad := []Config{
		{DiodeISat: 0, ADCBits: 8, ADCVMax: 0.6, SenseVoltage: 2},
		{DiodeISat: 1e-9, ADCBits: 0, ADCVMax: 0.6, SenseVoltage: 2},
		{DiodeISat: 1e-9, ADCBits: 17, ADCVMax: 0.6, SenseVoltage: 2},
		{DiodeISat: 1e-9, ADCBits: 8, ADCVMax: 0, SenseVoltage: 2},
		{DiodeISat: 1e-9, ADCBits: 8, ADCVMax: 0.6, SenseVoltage: 0},
	}
	for i, cfg := range bad {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestCodeForPowerMonotonic(t *testing.T) {
	m := New(DefaultConfig())
	prev := uint8(0)
	for p := 1e-5; p < 1; p *= 2 {
		code := m.CodeForPower(p)
		if code < prev {
			t.Errorf("code decreased at P=%g: %d < %d", p, code, prev)
		}
		prev = code
	}
	if m.CodeForPower(0) != 0 || m.CodeForPower(-1) != 0 {
		t.Error("non-positive power must read code 0")
	}
}

func TestExponentFactorNearOneEighth(t *testing.T) {
	m := New(DefaultConfig())
	// The paper's design point: with V_ADCMax = 0.6 V the per-code exponent
	// factor is ≈ 1/8 across 25–50 °C.
	for _, tc := range []float64{25, 37.5, 50} {
		m.SetTemperature(tc)
		c := m.ExponentFactor()
		if c < 0.115 || c > 0.14 {
			t.Errorf("at %g°C exponent factor = %g, want ≈ 0.125", tc, c)
		}
	}
	m.SetTemperature(42)
	if got := m.Temperature(); math.Abs(got-42) > 1e-9 {
		t.Errorf("Temperature = %g, want 42", got)
	}
}

func TestHardwareRatioIdentityWhenComputeBound(t *testing.T) {
	if r := HardwareRatio(100, 100); r != 1 {
		t.Errorf("HardwareRatio(equal codes) = %g, want 1", r)
	}
	if r := HardwareRatio(100, 50); r != 1 {
		t.Errorf("HardwareRatio(d2<d1) = %g, want 1", r)
	}
}

func TestHardwareRatioPowersOfTwo(t *testing.T) {
	// Δ = 8k should give exactly 2^k.
	for k := 0; k <= 10; k++ {
		want := math.Pow(2, float64(k))
		if got := HardwareRatio(0, uint8(8*k)); got != want {
			t.Errorf("HardwareRatio Δ=%d = %g, want %g", 8*k, got, want)
		}
	}
}

func TestHardwareRatioFractionalSteps(t *testing.T) {
	for delta := 1; delta < 64; delta++ {
		want := math.Pow(2, float64(delta)/8)
		got := HardwareRatio(0, uint8(delta))
		if math.Abs(got-want)/want > 1e-12 {
			t.Errorf("Δ=%d: %g vs exact %g", delta, got, want)
		}
	}
}

// The paper's headline accuracy claim: the module predicts the P_exe/P_in
// ratio with bounded error for temperatures between 25 and 50 °C. The error
// has two sources: ADC quantisation (≤ half a code on each conversion) and
// the hard-coded 1/8 exponent factor vs the true c(T). We characterise both
// over the operating regime the paper's workloads live in (ratio ≤ 4) and
// assert the error stays within 10 %, with the ≤ 5.5 % band holding at the
// design-point temperature. EXPERIMENTS.md records the measured maxima.
func TestRatioErrorBounded(t *testing.T) {
	m := New(DefaultConfig())
	var sumDesign, sumRange float64
	var nDesign, nRange int
	maxErrRange := 0.0
	for _, tempC := range []float64{25, 30, 35, 40, 42, 45, 50} {
		m.SetTemperature(tempC)
		for pin := 1e-3; pin <= 0.2; pin *= 1.17 {
			for ratio := 1.05; ratio <= 4.0; ratio *= 1.13 {
				pexe := pin * ratio
				d1 := m.CodeForPower(pin)
				d2 := m.CodeForPower(pexe)
				if d1 == 0 || d2 >= 255 {
					continue // outside the module's dynamic range
				}
				got := HardwareRatio(d1, d2)
				relErr := math.Abs(got-ratio) / ratio
				if tempC == 42 {
					sumDesign += relErr
					nDesign++
				}
				sumRange += relErr
				nRange++
				if relErr > maxErrRange {
					maxErrRange = relErr
				}
			}
		}
	}
	meanDesign := sumDesign / float64(nDesign)
	meanRange := sumRange / float64(nRange)
	// Mean error at the design-point temperature must satisfy the paper's
	// ≤ 5.5 % figure; the worst single sample is bounded by the two-sided
	// ADC quantisation limit 2^{1.5/8}−1 ≈ 13.9 % plus temperature drift.
	if meanDesign > 0.055 {
		t.Errorf("design-point (42°C) mean ratio error = %.4f, want ≤ 0.055", meanDesign)
	}
	if meanRange > 0.075 {
		t.Errorf("25–50°C mean ratio error = %.4f, want ≤ 0.075", meanRange)
	}
	if maxErrRange > 0.15 {
		t.Errorf("25–50°C max ratio error = %.4f, want ≤ 0.15 (quantisation bound)", maxErrRange)
	}
	t.Logf("ratio error: design-point mean %.4f, 25–50°C mean %.4f, max %.4f",
		meanDesign, meanRange, maxErrRange)
}

func TestSeTableValidation(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSeTable(texe<=0) did not panic")
		}
	}()
	NewSeTable(0, 10)
}

func TestSe2eComputeBound(t *testing.T) {
	tab := NewSeTable(1.5, 80)
	// Input power at or above execution power: S_e2e = t_exe.
	for _, d1 := range []uint8{80, 81, 255} {
		if got := tab.Se2e(d1); got != 1.5 {
			t.Errorf("Se2e(d1=%d) = %g, want t_exe 1.5", d1, got)
		}
	}
	if tab.Texe() != 1.5 || tab.PowerCode() != 80 {
		t.Errorf("accessors = (%g, %d), want (1.5, 80)", tab.Texe(), tab.PowerCode())
	}
}

func TestSe2eChargeBound(t *testing.T) {
	tab := NewSeTable(2.0, 96)
	// Δ = 16 → ratio 2^2 = 4 → S_e2e = 8.
	if got := tab.Se2e(80); got != 8 {
		t.Errorf("Se2e = %g, want 8", got)
	}
	// Δ = 11 → 2^(11/8) = 2 * 2^(3/8).
	want := 2.0 * math.Pow(2, 11.0/8)
	if got := tab.Se2e(85); math.Abs(got-want)/want > 1e-12 {
		t.Errorf("Se2e = %g, want %g", got, want)
	}
}

func TestSe2eMatchesHardwareRatio(t *testing.T) {
	tab := NewSeTable(3.0, 200)
	for d1 := uint8(0); d1 < 255; d1 += 7 {
		want := 3.0 * HardwareRatio(d1, 200)
		if got := tab.Se2e(d1); math.Abs(got-want) > 1e-9*want {
			t.Errorf("d1=%d: Se2e=%g, want %g", d1, got, want)
		}
	}
}

func TestSe2eExact(t *testing.T) {
	if got := Se2eExact(2, 0.01, 0.02); got != 2 {
		t.Errorf("compute-bound exact = %g, want 2", got)
	}
	if got := Se2eExact(2, 0.04, 0.01); got != 8 {
		t.Errorf("charge-bound exact = %g, want 8", got)
	}
	if got := Se2eExact(2, 0.04, 0); !(got > 1e6) {
		t.Errorf("zero input power must give a huge sentinel, got %g", got)
	}
}

// Property: the hardware S_e2e is always ≥ t_exe (recharging can only make a
// job slower, never faster) and monotonically non-increasing in d1 (more
// input power → shorter service time).
func TestPropertySe2eMonotone(t *testing.T) {
	f := func(texeRaw uint16, d2 uint8) bool {
		texe := float64(texeRaw%5000)/1000 + 0.001
		tab := NewSeTable(texe, d2)
		prev := math.Inf(1)
		for d1 := 0; d1 <= 255; d1++ {
			s := tab.Se2e(uint8(d1))
			if s < texe*(1-1e-12) {
				return false
			}
			if s > prev*(1+1e-12) {
				return false
			}
			prev = s
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: HardwareRatio approximates 2^{Δ/8} exactly for every Δ.
func TestPropertyHardwareRatioExactForm(t *testing.T) {
	f := func(d1, d2 uint8) bool {
		got := HardwareRatio(d1, d2)
		if d2 <= d1 {
			return got == 1
		}
		want := math.Pow(2, float64(int(d2)-int(d1))/8)
		return math.Abs(got-want)/want < 1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// The two S_e2e paths on the host; the MCU cycle anchors live in
// internal/device (a desktop CPU divides faster than it indexes a table,
// the opposite of the MSP430).
func BenchmarkHardwareSe2e(b *testing.B) {
	tab := NewSeTable(1.25, 180)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += tab.Se2e(uint8(i))
	}
	_ = sink
}

func BenchmarkSoftwareDivisionSe2e(b *testing.B) {
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += Se2eExact(1.25, 0.05, float64(i%200)*1e-4+1e-4)
	}
	_ = sink
}
