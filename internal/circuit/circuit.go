// Package circuit models Quetzal's power-measurement hardware module
// (paper §5.1, Figure 6): two diodes, a multiplexer and an 8-bit ADC that
// together let a microcontroller evaluate the P_exe/P_in ratio — and with it
// the end-to-end service time S_e2e = max(t_exe, t_exe·P_exe/P_in) — without
// any division.
//
// Physics: for a diode carrying current I, the Diode Law gives
//
//	V_d = (kT/q) · ln(I/I₀)
//
// so the difference of two diode voltages measured at the same temperature
// encodes the log of the current ratio:
//
//	V_D2 − V_D1 = (kT/q) · ln(I_exe/I_in)  ⇒  I_exe/I_in = 2^{c·(d2−d1)}
//
// where d1, d2 are 8-bit ADC codes and c = q·log₂(e)·V_ADCMax/(k·T·255).
// Choosing V_ADCMax = 0.6 V makes c ≈ 1/8 for temperatures between 25–50 °C,
// which the hardware hard-codes: the integer part of (d2−d1)/8 becomes a
// shift, the fractional part (eight possible values) indexes a table of
// pre-multiplied t_exe values. The full S_e2e computation is then one
// subtraction, one lookup, two shifts and one multiplication (Algorithm 3).
package circuit

import (
	"fmt"
	"math"
)

// Physical constants (SI).
const (
	Boltzmann        = 1.380649e-23    // J/K
	ElementaryCharge = 1.602176634e-19 // C
)

// Per-sample measurement cost of the module's ADC path (multiplexer
// settle + 8-bit conversion + the MCU read), in the integer units the
// fault layer's Spec carries. These are the defaults behind the
// `-meascost` realism knob; Ashraf et al. (arXiv 2508.08757) show this
// cost is far from negligible on harvesting-class nodes.
const (
	DefaultMeasEnergyNJ  = 250 // nanojoules drawn from the store per sample
	DefaultMeasLatencyUS = 20  // microseconds of controller latency per sample
)

// CelsiusToKelvin converts a temperature.
func CelsiusToKelvin(c float64) float64 { return c + 273.15 }

// Diode models an ideal-diode-law junction with saturation current ISat.
type Diode struct {
	ISat float64 // saturation current I₀ in amperes
}

// Voltage returns the forward voltage at the given current and temperature.
// Currents at or below zero return 0 (diode off).
func (d Diode) Voltage(current, tempK float64) float64 {
	if current <= 0 {
		return 0
	}
	return Boltzmann * tempK / ElementaryCharge * math.Log(current/d.ISat)
}

// Current returns the forward current at the given voltage and temperature.
func (d Diode) Current(voltage, tempK float64) float64 {
	return d.ISat * math.Exp(voltage*ElementaryCharge/(Boltzmann*tempK))
}

// ADC is an n-bit analog-to-digital converter over [0, VMax].
type ADC struct {
	Bits int     // resolution; the paper's module uses 8
	VMax float64 // full-scale voltage; the paper selects 0.6 V
}

// Levels returns the number of quantisation steps minus one (255 for 8-bit).
func (a ADC) Levels() int { return 1<<uint(a.Bits) - 1 }

// Code converts a voltage to the nearest ADC code, clamped to range.
func (a ADC) Code(v float64) uint8 {
	lv := float64(a.Levels())
	code := math.Round(v / a.VMax * lv)
	if code < 0 {
		code = 0
	}
	if code > lv {
		code = lv
	}
	return uint8(code)
}

// Voltage converts an ADC code back to volts (code center).
func (a ADC) Voltage(code uint8) float64 {
	return float64(code) / float64(a.Levels()) * a.VMax
}

// Config describes one hardware module instance.
type Config struct {
	DiodeISat    float64 // saturation current of the matched diode pair
	ADCBits      int
	ADCVMax      float64
	SenseVoltage float64 // common voltage at which both currents are sensed
	TempC        float64 // ambient temperature at construction
}

// DefaultConfig matches the paper's module: 8-bit ADC, V_ADCMax = 0.6 V,
// diode pair like the SDM40E20LC, measurements referenced to a 2 V rail.
func DefaultConfig() Config {
	return Config{
		DiodeISat:    2e-9, // typical small Schottky saturation current
		ADCBits:      8,
		ADCVMax:      0.6,
		SenseVoltage: 2.0,
		TempC:        25,
	}
}

// Module is the simulated hardware module. The multiplexer of Figure 6 is
// modelled by the choice of method: CodeForPower plays the role of selecting
// V_in/V_cap (input path, diode D1) or V_exe (execution path, diode D2) and
// reading the 8-bit conversion.
type Module struct {
	diode Diode
	adc   ADC
	vRef  float64
	tempK float64
}

// New builds a module from cfg. It panics on non-physical configuration.
func New(cfg Config) *Module {
	if cfg.DiodeISat <= 0 {
		panic(fmt.Sprintf("circuit: diode saturation current must be positive, got %g", cfg.DiodeISat))
	}
	if cfg.ADCBits <= 0 || cfg.ADCBits > 16 {
		panic(fmt.Sprintf("circuit: ADC bits must be in (0,16], got %d", cfg.ADCBits))
	}
	if cfg.ADCVMax <= 0 || cfg.SenseVoltage <= 0 {
		panic(fmt.Sprintf("circuit: voltages must be positive (VMax=%g, sense=%g)", cfg.ADCVMax, cfg.SenseVoltage))
	}
	return &Module{
		diode: Diode{ISat: cfg.DiodeISat},
		adc:   ADC{Bits: cfg.ADCBits, VMax: cfg.ADCVMax},
		vRef:  cfg.SenseVoltage,
		tempK: CelsiusToKelvin(cfg.TempC),
	}
}

// SetTemperature updates the junction temperature in °C. The paper
// characterises the module between 25 and 50 °C.
func (m *Module) SetTemperature(tempC float64) { m.tempK = CelsiusToKelvin(tempC) }

// Temperature returns the junction temperature in °C.
func (m *Module) Temperature() float64 { return m.tempK - 273.15 }

// CodeForPower converts a power draw (or harvest) in watts into the 8-bit
// ADC code the MCU would read for the corresponding diode voltage. This is
// the full measurement path: power → current at the sense voltage → diode
// forward voltage at the current temperature → quantised ADC code.
func (m *Module) CodeForPower(power float64) uint8 {
	if power <= 0 {
		return 0
	}
	i := power / m.vRef
	return m.adc.Code(m.diode.Voltage(i, m.tempK))
}

// PowerForCode inverts CodeForPower (up to quantisation); used by tests.
func (m *Module) PowerForCode(code uint8) float64 {
	v := m.adc.Voltage(code)
	return m.diode.Current(v, m.tempK) * m.vRef
}

// ExponentFactor returns the true per-code exponent factor
// c(T) = q·log₂(e)·V_ADCMax / (k·T·levels); the hardware assumes c = 1/8.
func (m *Module) ExponentFactor() float64 {
	return ElementaryCharge * math.Log2(math.E) * m.adc.VMax /
		(Boltzmann * m.tempK * float64(m.adc.Levels()))
}

// HardwareRatio evaluates the module's division-free approximation of
// I_exe/I_in = 2^{(d2−d1)/8} from two ADC codes, exactly as the MCU computes
// it: shift for the integer part, eight-entry lookup for the fraction. Codes
// with d2 ≤ d1 mean P_exe ≤ P_in (compute-bound) and return 1.
func HardwareRatio(d1, d2 uint8) float64 {
	if d2 <= d1 {
		return 1
	}
	delta := int(d2) - int(d1)
	return frac8[delta&0x07] * float64(uint64(1)<<uint(delta>>3))
}

// frac8[i] = 2^{i/8}, the eight pre-computed fractional-exponent multipliers
// (paper: "b can only take eight possible values (0, 0.125, ..)").
var frac8 = [8]float64{
	1.0000000000000000,
	1.0905077326652577, // 2^0.125
	1.1892071150027210, // 2^0.250
	1.2968395546510096, // 2^0.375
	1.4142135623730951, // 2^0.500
	1.5422108254079407, // 2^0.625
	1.6817928305074290, // 2^0.750
	1.8340080864093424, // 2^0.875
}
