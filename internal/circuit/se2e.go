package circuit

import "fmt"

// SeTable holds the eight pre-multiplied t_exe values for one task (or one
// degradation option of a task). The paper pre-multiplies t_exe at
// profile-time with all eight fractional-exponent values so the runtime
// S_e2e computation needs no floating point and no division: the lowest
// three bits of (d2−d1) select the entry, the remaining bits give the shift
// (Algorithm 3).
type SeTable struct {
	texe    float64    // the task's profiled execution latency, seconds
	premult [8]float64 // texe · 2^{i/8}
	d2      uint8      // ADC code for the task's execution power, recorded at profiling
}

// NewSeTable builds the table for a task with execution latency texe (s)
// whose execution-power diode reading was quantised to code d2.
func NewSeTable(texe float64, d2 uint8) SeTable {
	if texe <= 0 {
		panic(fmt.Sprintf("circuit: t_exe must be positive, got %g", texe))
	}
	var t SeTable
	t.texe = texe
	t.d2 = d2
	for i := range t.premult {
		t.premult[i] = texe * frac8[i]
	}
	return t
}

// Texe returns the profiled execution latency in seconds.
func (t SeTable) Texe() float64 { return t.texe }

// PowerCode returns the recorded execution-power ADC code (V_D2).
func (t SeTable) PowerCode() uint8 { return t.d2 }

// Se2e evaluates Algorithm 3: the task's end-to-end service time given the
// runtime input-power code d1 (V_D1). When the recorded execution-power code
// does not exceed the input-power code, harvest outpaces execution and
// S_e2e = t_exe; otherwise S_e2e = t_exe · 2^{(d2−d1)/8}, computed from the
// pre-multiplied table with shifts only.
func (t SeTable) Se2e(d1 uint8) float64 {
	if t.d2 <= d1 {
		return t.texe
	}
	delta := int(t.d2) - int(d1)
	return t.premult[delta&0x07] * float64(uint64(1)<<uint(delta>>3))
}

// Se2eExact computes the reference value max(t_exe, t_exe·P_exe/P_in) with
// full floating-point division — what the MCU would have to do without the
// hardware module. Used for error characterisation and the Avg-S_e2e
// baseline's ideal comparator.
func Se2eExact(texe, pexe, pin float64) float64 {
	if pin <= 0 {
		// No harvestable power: recharge time is unbounded. Callers treat
		// +Inf as "this job cannot finish until power returns"; the
		// scheduler still orders jobs by t_exe·P_exe in this regime, so
		// return a very large but finite sentinel scaled by energy.
		return texe * pexe * 1e9
	}
	charge := texe * pexe / pin
	if charge > texe {
		return charge
	}
	return texe
}
