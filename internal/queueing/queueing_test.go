package queueing

import (
	"math"
	"testing"
	"testing/quick"
)

func TestUtilizationAndLittle(t *testing.T) {
	if got := Utilization(0.5, 2); got != 1.0 {
		t.Errorf("Utilization = %g, want 1", got)
	}
	if got := Utilization(-1, 2); got != 0 {
		t.Errorf("negative λ Utilization = %g, want 0", got)
	}
	if got := Little(2, 3); got != 6 {
		t.Errorf("Little = %g, want 6", got)
	}
	if got := Little(2, -3); got != 0 {
		t.Errorf("negative W Little = %g, want 0", got)
	}
}

func TestMM1Queue(t *testing.T) {
	if got := MM1Queue(0.5); got != 1 {
		t.Errorf("MM1Queue(0.5) = %g, want 1", got)
	}
	if got := MM1Queue(0.9); math.Abs(got-9) > 1e-12 {
		t.Errorf("MM1Queue(0.9) = %g, want 9", got)
	}
	if !math.IsInf(MM1Queue(1), 1) || !math.IsInf(MM1Queue(2), 1) {
		t.Error("MM1Queue must diverge at ρ ≥ 1")
	}
	if got := MM1Queue(-0.1); got != 0 {
		t.Errorf("MM1Queue(<0) = %g, want 0", got)
	}
}

func TestMD1(t *testing.T) {
	// Lq = ρ²/(2(1−ρ)): at ρ=0.5, Lq = 0.25.
	if got := MD1QueueLength(0.5); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("MD1QueueLength(0.5) = %g, want 0.25", got)
	}
	if got := MD1System(0.5); math.Abs(got-0.75) > 1e-12 {
		t.Errorf("MD1System(0.5) = %g, want 0.75", got)
	}
	if !math.IsInf(MD1System(1), 1) {
		t.Error("MD1System must diverge at ρ = 1")
	}
	// Deterministic service always beats exponential service on queue
	// length (half the P-K waiting term).
	for _, rho := range []float64{0.1, 0.5, 0.9, 0.99} {
		if MD1System(rho) >= MM1Queue(rho) {
			t.Errorf("ρ=%g: M/D/1 %g not below M/M/1 %g", rho, MD1System(rho), MM1Queue(rho))
		}
	}
}

func TestNewMM1KValidation(t *testing.T) {
	if _, err := NewMM1K(-0.1, 5); err == nil {
		t.Error("accepted negative ρ")
	}
	if _, err := NewMM1K(0.5, 0); err == nil {
		t.Error("accepted zero capacity")
	}
	if _, err := NewMM1K(0.5, 10); err != nil {
		t.Errorf("rejected valid model: %v", err)
	}
}

func TestMM1KDistributionSumsToOne(t *testing.T) {
	for _, rho := range []float64{0, 0.3, 0.9, 1.0, 1.5} {
		for _, k := range []int{1, 5, 10, 50} {
			q, err := NewMM1K(rho, k)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for n := 0; n <= k; n++ {
				sum += q.Pn(n)
			}
			if math.Abs(sum-1) > 1e-9 {
				t.Errorf("ρ=%g K=%d: ΣPn = %g, want 1", rho, k, sum)
			}
		}
	}
}

func TestMM1KRhoOneIsUniform(t *testing.T) {
	q, _ := NewMM1K(1, 4)
	for n := 0; n <= 4; n++ {
		if got := q.Pn(n); math.Abs(got-0.2) > 1e-12 {
			t.Errorf("Pn(%d) = %g, want 0.2 (uniform at ρ=1)", n, got)
		}
	}
	if got := q.Blocking(); math.Abs(got-0.2) > 1e-12 {
		t.Errorf("Blocking = %g, want 0.2", got)
	}
}

func TestMM1KBlockingMonotoneInRho(t *testing.T) {
	prev := -1.0
	for rho := 0.1; rho < 3; rho += 0.1 {
		q, _ := NewMM1K(rho, 10)
		b := q.Blocking()
		if b <= prev {
			t.Errorf("blocking not increasing at ρ=%g: %g ≤ %g", rho, b, prev)
		}
		prev = b
	}
}

func TestMM1KHeavyTrafficApproachesCertainBlocking(t *testing.T) {
	q, _ := NewMM1K(50, 10)
	if got := q.Blocking(); got < 0.97 {
		t.Errorf("Blocking at ρ=50 = %g, want ≈ 1", got)
	}
	if got := q.Mean(); got < 9.9 {
		t.Errorf("Mean at ρ=50 = %g, want ≈ K", got)
	}
}

func TestMM1KOutOfRangePn(t *testing.T) {
	q, _ := NewMM1K(0.5, 3)
	if q.Pn(-1) != 0 || q.Pn(4) != 0 {
		t.Error("out-of-range Pn must be 0")
	}
}

func TestMM1KThroughputConservation(t *testing.T) {
	q, _ := NewMM1K(0.8, 10)
	lambda := 2.0
	if got := q.Throughput(lambda); got >= lambda || got <= 0 {
		t.Errorf("Throughput = %g, want in (0, %g)", got, lambda)
	}
}

func TestStabilityBound(t *testing.T) {
	if got := StabilityBound(0.5); got != 2 {
		t.Errorf("StabilityBound(0.5) = %g, want 2", got)
	}
	if !math.IsInf(StabilityBound(0), 1) {
		t.Error("StabilityBound(0) must be +Inf")
	}
}

// Property: as K → ∞ with ρ < 1, M/M/1/K mean approaches the M/M/1 mean
// and blocking approaches 0.
func TestPropertyMM1KConvergesToMM1(t *testing.T) {
	f := func(rhoRaw uint8) bool {
		rho := float64(rhoRaw%80+1) / 100 // (0, 0.8]
		q, err := NewMM1K(rho, 400)
		if err != nil {
			return false
		}
		return math.Abs(q.Mean()-MM1Queue(rho)) < 1e-3 && q.Blocking() < 1e-3
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

// Property: Little's Law is consistent with M/M/1/K internally — the mean
// number in system equals accepted throughput × mean sojourn computed from
// the model (L = λ_eff · W with W = L/λ_eff is a tautology, so instead we
// check L ≤ K and blocking ∈ [0,1] across the parameter space).
func TestPropertyMM1KBounds(t *testing.T) {
	f := func(rhoRaw uint16, kRaw uint8) bool {
		rho := float64(rhoRaw%500) / 100
		k := int(kRaw)%30 + 1
		q, err := NewMM1K(rho, k)
		if err != nil {
			return false
		}
		b := q.Blocking()
		m := q.Mean()
		return b >= 0 && b <= 1 && m >= 0 && m <= float64(k)+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
