// Package queueing collects the queueing-theory results Quetzal's design
// rests on (paper §3, citing Harchol-Balter's "Performance Modeling and
// Design of Computer Systems"): Little's Law, utilization, and the classic
// single-server queue formulas used to reason about — and in tests, to
// validate — the input buffer's behaviour.
//
// Conventions: λ is the arrival rate (inputs/second), s the mean service
// time per input (seconds), ρ = λ·s the offered utilization, K the system
// capacity in inputs (queue slots including the one in service).
package queueing

import (
	"fmt"
	"math"
)

// Utilization returns ρ = λ·s, the offered load of a single-server queue.
// ρ ≥ 1 means the queue diverges without admission control: the foundation
// of the IBO engine's stability check.
func Utilization(lambda, meanService float64) float64 {
	if lambda < 0 || meanService < 0 {
		return 0
	}
	return lambda * meanService
}

// Little returns L = λ·W, the expected number in system given throughput λ
// and mean sojourn W (Little's Law, Equation (2) of the paper).
func Little(lambda, sojourn float64) float64 {
	if lambda < 0 || sojourn < 0 {
		return 0
	}
	return lambda * sojourn
}

// MM1Queue returns the expected number in system for an M/M/1 queue,
// L = ρ/(1−ρ). It returns +Inf for ρ ≥ 1.
func MM1Queue(rho float64) float64 {
	if rho < 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho / (1 - rho)
}

// MD1QueueLength returns the expected number *waiting* for an M/D/1 queue
// (Poisson arrivals, deterministic service) via Pollaczek–Khinchine with
// zero service variability: Lq = ρ²/(2(1−ρ)). Deterministic service is the
// right model for profiled tasks with consistent t_exe (§5.2). Returns
// +Inf for ρ ≥ 1.
func MD1QueueLength(rho float64) float64 {
	if rho < 0 {
		return 0
	}
	if rho >= 1 {
		return math.Inf(1)
	}
	return rho * rho / (2 * (1 - rho))
}

// MD1System returns the expected number in system for M/D/1 (waiting plus
// in service): Lq + ρ.
func MD1System(rho float64) float64 {
	lq := MD1QueueLength(rho)
	if math.IsInf(lq, 1) {
		return lq
	}
	return lq + rho
}

// MM1K describes a finite M/M/1/K queue (capacity K including the server).
type MM1K struct {
	Rho float64
	K   int
}

// NewMM1K validates and constructs a finite queue model.
func NewMM1K(rho float64, k int) (MM1K, error) {
	if rho < 0 {
		return MM1K{}, fmt.Errorf("queueing: utilization must be non-negative, got %g", rho)
	}
	if k <= 0 {
		return MM1K{}, fmt.Errorf("queueing: capacity must be positive, got %d", k)
	}
	return MM1K{Rho: rho, K: k}, nil
}

// Pn returns the steady-state probability of n inputs in the system.
func (q MM1K) Pn(n int) float64 {
	if n < 0 || n > q.K {
		return 0
	}
	if almostOne(q.Rho) {
		// ρ = 1: the distribution is uniform over 0..K.
		return 1 / float64(q.K+1)
	}
	return (1 - q.Rho) * math.Pow(q.Rho, float64(n)) /
		(1 - math.Pow(q.Rho, float64(q.K+1)))
}

// Blocking returns the probability an arrival finds the system full and is
// lost — the analytic counterpart of an input buffer overflow.
func (q MM1K) Blocking() float64 { return q.Pn(q.K) }

// Mean returns the expected number in system.
func (q MM1K) Mean() float64 {
	sum := 0.0
	for n := 0; n <= q.K; n++ {
		sum += float64(n) * q.Pn(n)
	}
	return sum
}

// Throughput returns the accepted-arrival rate λ(1−P_K) for arrival rate
// lambda.
func (q MM1K) Throughput(lambda float64) float64 {
	return lambda * (1 - q.Blocking())
}

func almostOne(rho float64) bool { return math.Abs(rho-1) < 1e-12 }

// StabilityBound returns the largest sustainable per-input service time for
// the given arrival rate (the inverse of the utilization check): s_max such
// that λ·s_max = 1. Infinite for λ = 0.
func StabilityBound(lambda float64) float64 {
	if lambda <= 0 {
		return math.Inf(1)
	}
	return 1 / lambda
}
