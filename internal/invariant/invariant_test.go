package invariant

import (
	"strings"
	"testing"

	"quetzal/internal/metrics"
)

// cleanStep returns a physically consistent observation at time t.
func cleanStep(t float64) StepState {
	return StepState{
		Now: t,
		Store: StoreState{
			Energy:    0.10,
			Capacity:  0.1485,
			Harvested: 0.05 * t,
			Consumed:  0.05*t + 0.0485,
			Leaked:    0,
		},
		BufferLen: 2,
		BufferCap: 10,
	}
}

func TestCleanRunPasses(t *testing.T) {
	c := New(Config{})
	for i := 0; i < 1000; i++ {
		c.Step(cleanStep(float64(i) * 0.001))
	}
	fs := FinalState{
		StepState: cleanStep(1.0),
		Results: metrics.Results{
			SimSeconds: 1, Captures: 10, Arrivals: 8, InterestingArrivals: 4,
			IBODropsInteresting: 1, IBODropsOther: 1, SojournCount: 3, JobAborts: 1,
			HarvestedJoules: 0.05, ConsumedJoules: 0.0985,
		},
	}
	fs.BufferLen = 2 // 8 arrivals = 2 IBO + 3 departed + 1 aborted + 2 buffered
	if err := c.Finish(fs); err != nil {
		t.Fatalf("clean run flagged: %v", err)
	}
	if c.Steps() != 1001 {
		t.Errorf("steps = %d, want 1001", c.Steps())
	}
	if c.PeakBufferLen() != 2 {
		t.Errorf("peak buffer = %d, want 2", c.PeakBufferLen())
	}
}

func TestEnergyConservationDrift(t *testing.T) {
	c := New(Config{})
	c.Step(cleanStep(0))
	st := cleanStep(0.001)
	st.Store.Energy += 0.01 // energy appears from nowhere
	c.Step(st)
	err := c.Err()
	if err == nil || !strings.Contains(err.Error(), "energy-conservation") {
		t.Fatalf("drift not caught: %v", err)
	}
	if c.MaxDriftJ() < 0.009 {
		t.Errorf("max drift %g, want ~0.01", c.MaxDriftJ())
	}
}

func TestDriftWithinToleranceAccepted(t *testing.T) {
	c := New(Config{EnergyTolJ: 1e-6})
	c.Step(cleanStep(0))
	st := cleanStep(0.001)
	st.Store.Energy += 1e-9 // rounding-scale drift
	c.Step(st)
	if err := c.Err(); err != nil {
		t.Fatalf("sub-tolerance drift flagged: %v", err)
	}
}

func TestStoreBounds(t *testing.T) {
	for _, energy := range []float64{-0.001, 0.2} {
		c := New(Config{})
		st := cleanStep(0)
		st.Store.Energy = energy
		c.Step(st)
		if err := c.Err(); err == nil || !strings.Contains(err.Error(), "store-bounds") {
			t.Errorf("energy %g not caught: %v", energy, err)
		}
	}
}

func TestBufferBounds(t *testing.T) {
	for _, occ := range []int{-1, 11} {
		c := New(Config{})
		st := cleanStep(0)
		st.BufferLen = occ
		c.Step(st)
		if err := c.Err(); err == nil || !strings.Contains(err.Error(), "buffer-bounds") {
			t.Errorf("occupancy %d not caught: %v", occ, err)
		}
	}
}

func TestMonotonicTime(t *testing.T) {
	c := New(Config{})
	c.Step(cleanStep(5))
	c.Step(cleanStep(4.9))
	if err := c.Err(); err == nil || !strings.Contains(err.Error(), "monotonic-time") {
		t.Fatalf("time reversal not caught: %v", err)
	}
}

func TestInputConservation(t *testing.T) {
	c := New(Config{})
	c.Step(cleanStep(0))
	fs := FinalState{
		StepState: cleanStep(1),
		Results: metrics.Results{
			SimSeconds: 1, Captures: 10, Arrivals: 8, SojournCount: 3,
		},
	}
	fs.BufferLen = 2 // 8 ≠ 0 + 3 + 0 + 2: three inputs vanished untracked
	err := c.Finish(fs)
	if err == nil || !strings.Contains(err.Error(), "input-conservation") {
		t.Fatalf("vanished inputs not caught: %v", err)
	}
}

func TestCaptureConservation(t *testing.T) {
	c := New(Config{})
	c.Step(cleanStep(0))
	fs := FinalState{
		StepState: cleanStep(1),
		Results: metrics.Results{
			SimSeconds: 1, Captures: 5, CaptureMisses: 0, Arrivals: 7,
			SojournCount: 7,
		},
	}
	fs.BufferLen = 0
	err := c.Finish(fs)
	if err == nil || !strings.Contains(err.Error(), "capture-conservation") {
		t.Fatalf("excess arrivals not caught: %v", err)
	}
}

func TestEnergyFeasibility(t *testing.T) {
	c := New(Config{})
	c.Step(cleanStep(0))
	fs := FinalState{StepState: cleanStep(1)}
	fs.Results.SimSeconds = 1
	fs.Results.HarvestedJoules = 0.05
	fs.Results.ConsumedJoules = 10 // far beyond harvested + initial store
	fs.BufferLen = 2
	fs.Results.Arrivals = 2
	err := c.Finish(fs)
	if err == nil || !strings.Contains(err.Error(), "energy-feasibility") {
		t.Fatalf("impossible consumption not caught: %v", err)
	}
}

func TestStatsMismatch(t *testing.T) {
	c := New(Config{})
	c.Step(cleanStep(0))
	fs := FinalState{StepState: cleanStep(1)}
	fs.Results.SimSeconds = 1
	fs.Results.HarvestedJoules = 99 // does not match the store's counter
	err := c.Finish(fs)
	if err == nil || !strings.Contains(err.Error(), "stats-mismatch") {
		t.Fatalf("results/store divergence not caught: %v", err)
	}
}

// All violations surface together, bounded by MaxRecorded with an overflow
// note.
func TestViolationsJoinedAndBounded(t *testing.T) {
	c := New(Config{MaxRecorded: 3})
	c.Step(cleanStep(0))
	for i := 0; i < 10; i++ {
		st := cleanStep(float64(i))
		st.BufferLen = -1
		st.Store.Energy = -1
		c.Step(st)
	}
	err := c.Err()
	if err == nil {
		t.Fatal("no error")
	}
	msg := err.Error()
	for _, want := range []string{"store-bounds", "further violations not recorded"} {
		if !strings.Contains(msg, want) {
			t.Errorf("error missing %q:\n%s", want, msg)
		}
	}
	if len(c.Violations()) != 3 {
		t.Errorf("recorded %d violations, want 3", len(c.Violations()))
	}
	if c.TotalViolations() <= 3 {
		t.Errorf("total %d, want > 3", c.TotalViolations())
	}
}

func TestViolationError(t *testing.T) {
	v := Violation{Name: "store-bounds", Time: 1.5, Detail: "boom"}
	want := "invariant store-bounds at t=1.500s: boom"
	if v.Error() != want {
		t.Errorf("got %q, want %q", v.Error(), want)
	}
}
