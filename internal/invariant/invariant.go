// Package invariant is the runtime correctness layer of the simulator: a
// pluggable checker that both engines (fixed-increment and event-driven)
// drive every step/segment and once at end-of-run. It asserts the physical
// and accounting invariants the paper's E[S]/E[N] predictions rest on:
//
//   - energy-store bounds: stored energy stays within [0, capacity];
//   - energy conservation: stored = initial + harvested − consumed − leaked
//     within a small tolerance, at every step (a drift catches any code
//     path that mutates the store without accounting for the energy);
//   - buffer bounds: occupancy ∈ [0, capacity];
//   - monotonic simulated time; and
//   - end-of-run accounting identities, most importantly input
//     conservation: every arrival is either IBO-dropped, departed
//     (sojourn-counted), aborted, or still buffered when the run ends.
//
// Violations are collected (bounded), not panicked, so a sweep over
// thousands of configurations reports every broken run instead of dying on
// the first. The simulator enables the checker by default; hot benchmark
// paths opt out via sim.ChecksOff.
package invariant

import (
	"errors"
	"fmt"

	"quetzal/internal/metrics"
)

// Config tunes a Checker.
type Config struct {
	// EnergyTolJ bounds the permitted energy-conservation drift in joules.
	// The default 1e-6 J covers float64 rounding over tens of millions of
	// store operations (each operation contributes ≤ ~1 ulp of the running
	// totals, ~1e-14 J at the joule scale the simulator works in) with
	// orders of magnitude of headroom, while remaining far below any real
	// accounting bug (the smallest modeled energy, one idle 1 ms step,
	// is 3e-8 J; typical bugs shift millijoules).
	EnergyTolJ float64
	// MaxRecorded bounds how many violations are kept (default 8); the
	// total count is tracked regardless.
	MaxRecorded int

	// MeasPerSampleJ, when positive, is the configured per-ADC-sample
	// measurement energy (faults.Spec.MeasCost). Finish then holds the
	// exact identity MeasJoules == MeasSamples × MeasPerSampleJ — the
	// engine records INTENDED energy per sample, so any double charge (or
	// dropped charge) breaks the identity by at least one sample's energy.
	MeasPerSampleJ float64
	// DropoutWindows lists harvester dropout [start, end) intervals
	// (faults.Spec.Windows). A step fully inside a window must harvest
	// exactly 0 J — bitwise, since Harvest(0, dt) adds exactly 0.
	DropoutWindows [][2]float64
}

// StoreState snapshots the energy store's live accounting.
type StoreState struct {
	Energy   float64 // currently stored, joules
	Capacity float64 // maximum storable energy (½CV_max²)
	// Lifetime counters maintained by the store itself.
	Harvested float64
	Consumed  float64
	Leaked    float64
}

// StepState is one per-step observation.
type StepState struct {
	Now       float64
	Store     StoreState
	BufferLen int
	BufferCap int
}

// FinalState is the end-of-run observation.
type FinalState struct {
	StepState
	Results metrics.Results
	// PendingCaptures counts frames still inside the capture pipeline when
	// the run ended (captured but not yet offered to the buffer).
	PendingCaptures int
}

// Violation is one recorded invariant breach.
type Violation struct {
	Name   string  // stable identifier, e.g. "energy-conservation"
	Time   float64 // simulated time of detection
	Detail string
}

// Error renders the violation as one line.
func (v Violation) Error() string {
	return fmt.Sprintf("invariant %s at t=%.3fs: %s", v.Name, v.Time, v.Detail)
}

// Checker accumulates violations over one run. The zero value is not
// usable; construct with New. Not safe for concurrent use (the simulator
// is single-threaded, like the device it models).
type Checker struct {
	cfg        Config
	steps      int
	total      int // violations seen, including unrecorded ones
	violations []Violation

	prevNow float64
	// baseline is the conserved quantity E − H + C + L, equal to the
	// store's energy before the first harvest. Captured on the first
	// observation so SetFraction-style initial conditions are absorbed.
	baseline  float64
	haveBase  bool
	maxBufLen int
	maxDriftJ float64
	// prevHarvested tracks the lifetime harvest counter across steps for
	// the dropout-window zero-harvest check.
	prevHarvested float64
}

// New builds a checker.
func New(cfg Config) *Checker {
	if cfg.EnergyTolJ <= 0 {
		cfg.EnergyTolJ = 1e-6
	}
	if cfg.MaxRecorded <= 0 {
		cfg.MaxRecorded = 8
	}
	return &Checker{cfg: cfg, prevNow: -1}
}

// Steps returns how many observations the checker has processed.
func (c *Checker) Steps() int { return c.steps }

// Violations returns the recorded violations (bounded by MaxRecorded).
func (c *Checker) Violations() []Violation { return c.violations }

// TotalViolations returns the count of all violations, recorded or not.
func (c *Checker) TotalViolations() int { return c.total }

// MaxDriftJ reports the largest energy-conservation drift observed, even
// when it stayed within tolerance — useful for calibrating EnergyTolJ.
func (c *Checker) MaxDriftJ() float64 { return c.maxDriftJ }

// PeakBufferLen reports the highest buffer occupancy observed.
func (c *Checker) PeakBufferLen() int { return c.maxBufLen }

func (c *Checker) record(name string, now float64, format string, args ...any) {
	c.total++
	if len(c.violations) < c.cfg.MaxRecorded {
		c.violations = append(c.violations, Violation{
			Name: name, Time: now, Detail: fmt.Sprintf(format, args...),
		})
	}
}

// Step checks the per-step invariants against one observation. The
// simulator calls it after every step (fixed-increment) or segment
// (event-driven).
func (c *Checker) Step(st StepState) {
	c.steps++
	tol := c.cfg.EnergyTolJ

	// Simulated time must never move backwards.
	prevNow := c.prevNow
	if st.Now < prevNow {
		c.record("monotonic-time", st.Now, "time went backwards: %.9f after %.9f", st.Now, prevNow)
	}
	c.prevNow = st.Now

	// Store bounds: [0, capacity] within tolerance.
	s := st.Store
	if s.Energy < -tol || s.Energy > s.Capacity+tol {
		c.record("store-bounds", st.Now, "stored %.9g J outside [0, %.9g]", s.Energy, s.Capacity)
	}

	// Conservation: E − H + C + L is constant over the whole run (its
	// value is the initial stored energy). Any unaccounted mutation of the
	// store shows up as drift.
	base := s.Energy - s.Harvested + s.Consumed + s.Leaked
	if !c.haveBase {
		c.baseline = base
		c.haveBase = true
	} else {
		drift := base - c.baseline
		if drift < 0 {
			drift = -drift
		}
		if drift > c.maxDriftJ {
			c.maxDriftJ = drift
		}
		if drift > tol {
			c.record("energy-conservation", st.Now,
				"stored %.9g J drifts %.3g J from initial %.9g + harvested %.9g − consumed %.9g − leaked %.9g",
				s.Energy, drift, c.baseline, s.Harvested, s.Consumed, s.Leaked)
		}
	}

	// Buffer occupancy within [0, capacity].
	if st.BufferLen < 0 || st.BufferLen > st.BufferCap {
		c.record("buffer-bounds", st.Now, "occupancy %d outside [0, %d]", st.BufferLen, st.BufferCap)
	}
	if st.BufferLen > c.maxBufLen {
		c.maxBufLen = st.BufferLen
	}

	// Harvester dropout: a step lying fully inside a declared dropout
	// window samples 0 W at every left endpoint, so the lifetime harvest
	// counter must not move at all — exactly, not within tolerance.
	if len(c.cfg.DropoutWindows) > 0 && c.steps > 1 {
		for _, w := range c.cfg.DropoutWindows {
			if prevNow >= w[0] && st.Now <= w[1] {
				if d := s.Harvested - c.prevHarvested; d != 0 {
					c.record("dropout-harvest", st.Now,
						"harvested %.12g J inside dropout window [%g, %g)", d, w[0], w[1])
				}
				break
			}
		}
	}
	c.prevHarvested = s.Harvested
}

// Finish checks the end-of-run identities and returns every violation the
// run produced (per-step ones included), joined into a single error; nil
// when the run was clean.
func (c *Checker) Finish(fs FinalState) error {
	c.Step(fs.StepState) // final state obeys the per-step invariants too
	r := fs.Results

	// Input conservation: every arrival that was offered to the buffer is
	// exactly one of: dropped at the boundary (IBO), fully departed
	// (sojourn-counted), abandoned by the watchdog, or still buffered at
	// the end of the run. Inputs stay in their buffer slot while a job
	// runs, so in-flight work is covered by BufferLen.
	accounted := r.IBODropsInteresting + r.IBODropsOther +
		r.SojournCount + r.JobAborts + fs.BufferLen
	if r.Arrivals != accounted {
		c.record("input-conservation", fs.Now,
			"arrivals %d ≠ IBO-lost %d + departed %d + aborted %d + buffered %d",
			r.Arrivals, r.IBODropsInteresting+r.IBODropsOther,
			r.SojournCount, r.JobAborts, fs.BufferLen)
	}

	// Capture conservation: a captured frame is missed, still in the
	// pipeline, or finished the pipeline — and only finished frames that
	// differed can arrive, so arrivals are bounded by finished frames.
	finished := r.Captures - r.CaptureMisses - fs.PendingCaptures
	if finished < 0 {
		c.record("capture-conservation", fs.Now,
			"captures %d < misses %d + pipeline %d", r.Captures, r.CaptureMisses, fs.PendingCaptures)
	} else if r.Arrivals > finished {
		c.record("capture-conservation", fs.Now,
			"arrivals %d exceed frames through the pipeline %d", r.Arrivals, finished)
	}

	// Energy feasibility: the load cannot consume more than was ever
	// available (initial store + everything harvested).
	if c.haveBase && r.ConsumedJoules > r.HarvestedJoules+c.baseline+c.cfg.EnergyTolJ {
		c.record("energy-feasibility", fs.Now,
			"consumed %.6g J exceeds harvested %.6g + initial %.6g",
			r.ConsumedJoules, r.HarvestedJoules, c.baseline)
	}

	// The store's own lifetime counters must agree with the results copy.
	if r.HarvestedJoules != 0 || r.ConsumedJoules != 0 {
		if d := r.HarvestedJoules - fs.Store.Harvested; d > c.cfg.EnergyTolJ || d < -c.cfg.EnergyTolJ {
			c.record("stats-mismatch", fs.Now,
				"results harvested %.9g ≠ store harvested %.9g", r.HarvestedJoules, fs.Store.Harvested)
		}
	}

	// Measurement-energy conservation: the engine records the intended
	// per-sample energy on every charge, so the total is EXACTLY samples ×
	// per-sample cost (the 1e-12 J slack covers float accumulation order,
	// orders of magnitude below one sample's charge). A sample charged
	// twice — or never — breaks this by at least MeasPerSampleJ.
	if c.cfg.MeasPerSampleJ > 0 {
		want := float64(r.MeasSamples) * c.cfg.MeasPerSampleJ
		if d := r.MeasJoules - want; d > 1e-12 || d < -1e-12 {
			c.record("meas-conservation", fs.Now,
				"meas energy %.12g J ≠ %d samples × %.12g J", r.MeasJoules, r.MeasSamples, c.cfg.MeasPerSampleJ)
		}
	}

	// Per-field accounting identities on the results themselves.
	if err := r.Check(); err != nil {
		c.record("results-check", fs.Now, "%v", err)
	}

	return c.Err()
}

// Err joins all recorded violations into one error (nil when clean). When
// more violations occurred than were recorded, the overflow is noted.
func (c *Checker) Err() error {
	if c.total == 0 {
		return nil
	}
	errs := make([]error, 0, len(c.violations)+1)
	for _, v := range c.violations {
		errs = append(errs, v)
	}
	if c.total > len(c.violations) {
		errs = append(errs, fmt.Errorf("invariant: %d further violations not recorded", c.total-len(c.violations)))
	}
	return errors.Join(errs...)
}
