// Package model defines Quetzal's programming model (paper §5.2):
// applications are written as tasks grouped into jobs.
//
// A task is an application-specific computation that processes an input or
// manipulates a peripheral (ML inference, compression, radio transmission).
// Degradable tasks offer a quality-ordered list of options with different
// time/energy costs (e.g. MobileNetV2 vs LeNet; full-image vs single-byte
// packets). A job is a sequence of tasks, at most one of which is degradable
// — that task is responsible for preventing IBOs for the whole job. A job
// can spawn another job by re-inserting its input into the input buffer.
package model

import (
	"errors"
	"fmt"
)

// TaskKind describes how the simulator interprets a task's completion.
type TaskKind int

const (
	// Compute tasks always run to completion with no output decision
	// (e.g. image compression).
	Compute TaskKind = iota
	// Classify tasks decide whether the input is application-interesting.
	// The decision is drawn from the option's error rates against the
	// input's ground truth. A negative result ends the job early and, if
	// the job would spawn, suppresses the spawn.
	Classify
	// Transmit tasks emit a radio packet whose quality is the option's
	// HighQuality flag.
	Transmit
)

// String names the kind for diagnostics.
func (k TaskKind) String() string {
	switch k {
	case Compute:
		return "compute"
	case Classify:
		return "classify"
	case Transmit:
		return "transmit"
	default:
		return fmt.Sprintf("TaskKind(%d)", int(k))
	}
}

// Option is one quality level of a task. Options are profiled once (paper
// §4.1: consistent t_exe and P_exe per task) and quality-ordered best-first.
type Option struct {
	Name string
	// Texe is the execution latency in seconds; Pexe the draw in watts.
	Texe, Pexe float64
	// FalseNegative / FalsePositive are classifier error rates, used only
	// by Classify tasks: an interesting input is discarded with probability
	// FalseNegative; an uninteresting one passes with FalsePositive.
	FalseNegative, FalsePositive float64
	// HighQuality marks Transmit options whose packets the receiver can
	// audit (full images). Low-quality options (single byte) still report
	// the event but carry no evidence.
	HighQuality bool
	// TexeJitter is the fractional standard deviation of the execution
	// latency. The paper assumes "consistent t_exe and P_exe for each
	// task" and names variable execution costs as future work (§5.2, §8);
	// a non-zero jitter enables that extension: the simulator samples each
	// execution's latency from N(Texe, (TexeJitter·Texe)²), clamped to
	// [0.1·Texe, 3·Texe], and the PID controller absorbs the resulting
	// prediction error.
	TexeJitter float64
}

// Eexe returns the option's energy cost in joules.
func (o Option) Eexe() float64 { return o.Texe * o.Pexe }

// Validate checks an option's physical plausibility.
func (o Option) Validate() error {
	if o.Name == "" {
		return errors.New("model: option has empty name")
	}
	if o.Texe <= 0 || o.Pexe <= 0 {
		return fmt.Errorf("model: option %q needs positive Texe/Pexe, got %g/%g", o.Name, o.Texe, o.Pexe)
	}
	if o.FalseNegative < 0 || o.FalseNegative > 1 || o.FalsePositive < 0 || o.FalsePositive > 1 {
		return fmt.Errorf("model: option %q error rates must be in [0,1]", o.Name)
	}
	if o.TexeJitter < 0 || o.TexeJitter > 1 {
		return fmt.Errorf("model: option %q jitter must be in [0,1], got %g", o.Name, o.TexeJitter)
	}
	return nil
}

// Task is a named computation with one or more quality-ordered options.
// Options[0] is the highest quality; later entries are degradations.
type Task struct {
	Name    string
	Kind    TaskKind
	Options []Option
	// Conditional tasks execute only when the preceding Classify task in
	// the same job returned positive (Figure 5: "Job1:Task2 will only
	// process inputs that are positively classified by Job1:Task1").
	Conditional bool
	// Atomic tasks must complete within a single charge of the energy
	// store: a power failure mid-execution discards partial progress (no
	// JIT checkpoint can resume half a radio packet). The simulator waits
	// for the store to bank enough energy before starting an atomic task
	// and restarts it from scratch after a brown-out (§8: Quetzal operates
	// "on tasks that atomically complete within a single charge").
	Atomic bool
}

// Degradable reports whether the task offers more than one quality level.
func (t *Task) Degradable() bool { return len(t.Options) > 1 }

// Validate checks the task definition.
func (t *Task) Validate() error {
	if t.Name == "" {
		return errors.New("model: task has empty name")
	}
	if len(t.Options) == 0 {
		return fmt.Errorf("model: task %q has no options", t.Name)
	}
	if len(t.Options) > MaxOptions {
		return fmt.Errorf("model: task %q has %d options, library supports at most %d (§5.1)",
			t.Name, len(t.Options), MaxOptions)
	}
	for _, o := range t.Options {
		if err := o.Validate(); err != nil {
			return fmt.Errorf("task %q: %w", t.Name, err)
		}
	}
	return nil
}

// Library limits from paper §5.1: "Our software library supports a maximum
// of 32 tasks, with 4 degradation options for each task."
const (
	MaxTasks   = 32
	MaxOptions = 4
)

// NoSpawn marks a job that does not re-insert its input.
const NoSpawn = -1

// Job is an ordered sequence of tasks processing one buffered input.
type Job struct {
	ID    int
	Name  string
	Tasks []*Task
	// SpawnJobID, when not NoSpawn, re-inserts the input tagged for that
	// job after this job completes its full task sequence (i.e. the
	// classify chain, if any, was positive).
	SpawnJobID int
}

// DegradableTask returns the index of the job's degradable task, or -1.
func (j *Job) DegradableTask() int {
	for i, t := range j.Tasks {
		if t.Degradable() {
			return i
		}
	}
	return -1
}

// Validate enforces the §5.2 contract: at most one degradable task per job.
func (j *Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("model: job %d has empty name", j.ID)
	}
	if len(j.Tasks) == 0 {
		return fmt.Errorf("model: job %q has no tasks", j.Name)
	}
	deg := 0
	for i, t := range j.Tasks {
		if t == nil {
			return fmt.Errorf("model: job %q task %d is nil", j.Name, i)
		}
		if err := t.Validate(); err != nil {
			return fmt.Errorf("job %q: %w", j.Name, err)
		}
		if t.Degradable() {
			deg++
		}
	}
	if deg > 1 {
		return fmt.Errorf("model: job %q has %d degradable tasks, at most 1 allowed", j.Name, deg)
	}
	if j.Tasks[0].Conditional {
		return fmt.Errorf("model: job %q starts with a conditional task", j.Name)
	}
	return nil
}

// App is a complete application: the jobs the scheduler selects among, plus
// the fixed capture-pipeline costs paid at every frame regardless of
// scheduling (camera readout, pixel differencing, storing/JPEG).
type App struct {
	Name string
	Jobs []*Job
	// EntryJobID is the job that processes freshly captured inputs.
	EntryJobID int
	// Capture pipeline cost per frame (always incurred while the device is
	// on): the paper's systems "always compress images before storing".
	CaptureTexe, CapturePexe float64
}

// Validate checks the whole application.
func (a *App) Validate() error {
	if len(a.Jobs) == 0 {
		return errors.New("model: app has no jobs")
	}
	ids := map[int]bool{}
	totalTasks := 0
	for _, j := range a.Jobs {
		if err := j.Validate(); err != nil {
			return err
		}
		if ids[j.ID] {
			return fmt.Errorf("model: duplicate job id %d", j.ID)
		}
		ids[j.ID] = true
		totalTasks += len(j.Tasks)
	}
	if totalTasks > MaxTasks {
		return fmt.Errorf("model: app has %d tasks, library supports at most %d (§5.1)", totalTasks, MaxTasks)
	}
	for _, j := range a.Jobs {
		if j.SpawnJobID != NoSpawn && !ids[j.SpawnJobID] {
			return fmt.Errorf("model: job %q spawns unknown job id %d", j.Name, j.SpawnJobID)
		}
	}
	if !ids[a.EntryJobID] {
		return fmt.Errorf("model: entry job id %d not defined", a.EntryJobID)
	}
	if a.CaptureTexe < 0 || a.CapturePexe < 0 {
		return errors.New("model: capture costs must be non-negative")
	}
	return nil
}

// JobByID returns the job with the given id, or nil.
func (a *App) JobByID(id int) *Job {
	for _, j := range a.Jobs {
		if j.ID == id {
			return j
		}
	}
	return nil
}

// MaxTasksPerJob returns the longest task sequence, used to size trackers.
func (a *App) MaxTasksPerJob() int {
	max := 0
	for _, j := range a.Jobs {
		if len(j.Tasks) > max {
			max = len(j.Tasks)
		}
	}
	return max
}
