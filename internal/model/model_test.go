package model

import (
	"strings"
	"testing"
)

func validTask(name string, kind TaskKind, opts int) *Task {
	t := &Task{Name: name, Kind: kind}
	for i := 0; i < opts; i++ {
		t.Options = append(t.Options, Option{
			Name: name + "-opt", Texe: 1 + float64(i), Pexe: 0.01,
		})
	}
	return t
}

func TestOptionEexe(t *testing.T) {
	o := Option{Name: "x", Texe: 2, Pexe: 0.05}
	if got := o.Eexe(); got != 0.1 {
		t.Errorf("Eexe = %g, want 0.1", got)
	}
}

func TestOptionValidate(t *testing.T) {
	bad := []Option{
		{Name: "", Texe: 1, Pexe: 1},
		{Name: "a", Texe: 0, Pexe: 1},
		{Name: "a", Texe: 1, Pexe: 0},
		{Name: "a", Texe: 1, Pexe: 1, FalseNegative: -0.1},
		{Name: "a", Texe: 1, Pexe: 1, FalsePositive: 1.1},
	}
	for i, o := range bad {
		if err := o.Validate(); err == nil {
			t.Errorf("case %d: Validate accepted %+v", i, o)
		}
	}
	good := Option{Name: "a", Texe: 1, Pexe: 1, FalseNegative: 0.05, FalsePositive: 0.1}
	if err := good.Validate(); err != nil {
		t.Errorf("Validate rejected valid option: %v", err)
	}
}

func TestTaskKindString(t *testing.T) {
	cases := map[TaskKind]string{Compute: "compute", Classify: "classify", Transmit: "transmit", TaskKind(9): "TaskKind(9)"}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(k), got, want)
		}
	}
}

func TestTaskDegradable(t *testing.T) {
	if validTask("a", Compute, 1).Degradable() {
		t.Error("single-option task reported degradable")
	}
	if !validTask("a", Compute, 2).Degradable() {
		t.Error("two-option task not degradable")
	}
}

func TestTaskValidate(t *testing.T) {
	if err := (&Task{Name: "", Options: []Option{{Name: "o", Texe: 1, Pexe: 1}}}).Validate(); err == nil {
		t.Error("accepted empty task name")
	}
	if err := (&Task{Name: "t"}).Validate(); err == nil {
		t.Error("accepted task with no options")
	}
	if err := validTask("t", Compute, MaxOptions+1).Validate(); err == nil {
		t.Error("accepted task exceeding MaxOptions")
	}
	if err := validTask("t", Compute, MaxOptions).Validate(); err != nil {
		t.Errorf("rejected task at MaxOptions: %v", err)
	}
	bad := validTask("t", Compute, 1)
	bad.Options[0].Texe = -1
	if err := bad.Validate(); err == nil {
		t.Error("accepted task with invalid option")
	}
}

func TestJobDegradableTask(t *testing.T) {
	j := &Job{ID: 0, Name: "j", Tasks: []*Task{
		validTask("a", Compute, 1),
		validTask("b", Transmit, 2),
	}, SpawnJobID: NoSpawn}
	if got := j.DegradableTask(); got != 1 {
		t.Errorf("DegradableTask = %d, want 1", got)
	}
	j2 := &Job{ID: 1, Name: "j2", Tasks: []*Task{validTask("a", Compute, 1)}, SpawnJobID: NoSpawn}
	if got := j2.DegradableTask(); got != -1 {
		t.Errorf("DegradableTask = %d, want -1", got)
	}
}

func TestJobValidate(t *testing.T) {
	tests := []struct {
		name string
		job  *Job
		want string // substring of error, "" = valid
	}{
		{"valid", &Job{ID: 0, Name: "j", Tasks: []*Task{validTask("a", Classify, 2)}}, ""},
		{"empty name", &Job{ID: 0, Tasks: []*Task{validTask("a", Compute, 1)}}, "empty name"},
		{"no tasks", &Job{ID: 0, Name: "j"}, "no tasks"},
		{"nil task", &Job{ID: 0, Name: "j", Tasks: []*Task{nil}}, "is nil"},
		{"two degradable", &Job{ID: 0, Name: "j", Tasks: []*Task{
			validTask("a", Classify, 2), validTask("b", Transmit, 2)}}, "degradable"},
		{"leading conditional", &Job{ID: 0, Name: "j", Tasks: []*Task{
			{Name: "a", Conditional: true, Options: []Option{{Name: "o", Texe: 1, Pexe: 1}}}}}, "conditional"},
	}
	for _, tc := range tests {
		err := tc.job.Validate()
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want containing %q", tc.name, err, tc.want)
		}
	}
}

func testApp() *App {
	detect := &Job{ID: 0, Name: "detect", Tasks: []*Task{validTask("ml", Classify, 2)}, SpawnJobID: 1}
	report := &Job{ID: 1, Name: "report", Tasks: []*Task{
		validTask("compress", Compute, 1), validTask("radio", Transmit, 2)}, SpawnJobID: NoSpawn}
	return &App{Name: "test", Jobs: []*Job{detect, report}, EntryJobID: 0, CaptureTexe: 0.01, CapturePexe: 0.005}
}

func TestAppValidate(t *testing.T) {
	app := testApp()
	if err := app.Validate(); err != nil {
		t.Fatalf("valid app rejected: %v", err)
	}

	dup := testApp()
	dup.Jobs[1].ID = 0
	if err := dup.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("duplicate ids: %v", err)
	}

	badSpawn := testApp()
	badSpawn.Jobs[0].SpawnJobID = 42
	if err := badSpawn.Validate(); err == nil || !strings.Contains(err.Error(), "spawns unknown") {
		t.Errorf("bad spawn: %v", err)
	}

	badEntry := testApp()
	badEntry.EntryJobID = 9
	if err := badEntry.Validate(); err == nil || !strings.Contains(err.Error(), "entry job") {
		t.Errorf("bad entry: %v", err)
	}

	negCapture := testApp()
	negCapture.CaptureTexe = -1
	if err := negCapture.Validate(); err == nil {
		t.Error("accepted negative capture cost")
	}

	if err := (&App{Name: "empty"}).Validate(); err == nil {
		t.Error("accepted app with no jobs")
	}
}

func TestAppTaskBudget(t *testing.T) {
	app := &App{Name: "big", EntryJobID: 0}
	// Exactly 32 single-option tasks is at the §5.1 limit; 33 exceeds it.
	for j := 0; j < 8; j++ {
		job := &Job{ID: j, Name: "job", SpawnJobID: NoSpawn}
		for k := 0; k < 4; k++ {
			job.Tasks = append(job.Tasks, validTask("t", Compute, 1))
		}
		app.Jobs = append(app.Jobs, job)
	}
	if err := app.Validate(); err != nil {
		t.Fatalf("32 tasks must validate, got %v", err)
	}
	app.Jobs[0].Tasks = append(app.Jobs[0].Tasks, validTask("x", Compute, 1))
	if err := app.Validate(); err == nil || !strings.Contains(err.Error(), "at most 32") {
		t.Errorf("task budget: %v", err)
	}
}

func TestJobByIDAndMaxTasks(t *testing.T) {
	app := testApp()
	if got := app.JobByID(1); got == nil || got.Name != "report" {
		t.Errorf("JobByID(1) = %v", got)
	}
	if got := app.JobByID(77); got != nil {
		t.Errorf("JobByID(77) = %v, want nil", got)
	}
	if got := app.MaxTasksPerJob(); got != 2 {
		t.Errorf("MaxTasksPerJob = %d, want 2", got)
	}
}
