package pid

// Closed-loop step-response tests. In the runtime the controller's output
// is *added to each new E[S] prediction* (§4.3), which closes the loop: if
// the raw predictor has a constant bias b, the effective prediction is
// raw + Output(), so the error the controller sees is b − Output(). A
// correct PI(D) controller drives that error to zero — Output() converges
// to b, the bias is fully absorbed, and predictions become exact.
//
// The paper's Table 1 gains are tuned for multi-hour device runs; these
// tests use faster gains so convergence is observable in a few hundred
// iterations, and pin the structural properties: bounded overshoot, zero
// steady-state error on a constant bias, re-convergence after the bias
// steps, and a non-zero residual when the integral term is removed (the
// control-theory sanity check that it is the integrator doing that work).

import (
	"math"
	"testing"
)

// stepGains converge in a few hundred 0.1 s samples without ringing.
func stepGains() Config {
	return Config{Kp: 0.3, Ki: 0.4, Kd: 0.02, Tau: 0.2, OutMin: -100, OutMax: 100}
}

// closedLoop runs n samples of the runtime's feedback arrangement against a
// raw predictor with bias(i): prediction = raw + Output(), observation =
// raw + bias. It returns the output trace.
func closedLoop(c *Controller, n int, dt float64, bias func(i int) float64) []float64 {
	const raw = 2.0 // the raw E[S] prediction; any constant works
	outs := make([]float64, n)
	for i := 0; i < n; i++ {
		predicted := raw + c.Output()
		observed := raw + bias(i)
		outs[i] = c.Update(predicted, observed, dt)
	}
	return outs
}

func TestStepResponseZeroSteadyStateError(t *testing.T) {
	for _, b := range []float64{5, 0.25, -3} {
		c := New(stepGains())
		outs := closedLoop(c, 600, 0.1, func(int) float64 { return b })
		final := outs[len(outs)-1]
		if math.Abs(final-b) > 1e-3 {
			t.Errorf("bias %g: steady-state output %g, want %g (error %g)", b, final, b, final-b)
		}
		// And it stays converged: the last 100 samples are all within band.
		for i := len(outs) - 100; i < len(outs); i++ {
			if math.Abs(outs[i]-b) > 1e-2 {
				t.Errorf("bias %g: sample %d = %g left the steady-state band", b, i, outs[i])
				break
			}
		}
	}
}

func TestStepResponseOvershootBounded(t *testing.T) {
	const b = 10.0
	c := New(stepGains())
	outs := closedLoop(c, 600, 0.1, func(int) float64 { return b })
	peak := 0.0
	for _, o := range outs {
		if o > peak {
			peak = o
		}
	}
	if peak > 1.25*b {
		t.Errorf("peak output %g overshoots the %g step by %.0f%% (bound 25%%)", peak, b, 100*(peak/b-1))
	}
	if peak < b {
		// It must actually reach the step, or "no overshoot" is vacuous.
		if math.Abs(outs[len(outs)-1]-b) > 1e-3 {
			t.Errorf("output never reached the step: peak %g, final %g", peak, outs[len(outs)-1])
		}
	}
}

// TestStepResponseTracksBiasChange: the bias steps mid-run (the environment
// shifted — e.g. the harvester moved into shade and every job now takes
// longer than the profile predicts). The controller must re-converge.
func TestStepResponseTracksBiasChange(t *testing.T) {
	c := New(stepGains())
	outs := closedLoop(c, 1200, 0.1, func(i int) float64 {
		if i < 600 {
			return 4
		}
		return -2
	})
	if mid := outs[599]; math.Abs(mid-4) > 1e-2 {
		t.Errorf("before the change: output %g, want 4", mid)
	}
	if final := outs[len(outs)-1]; math.Abs(final-(-2)) > 1e-2 {
		t.Errorf("after the change: output %g, want -2", final)
	}
}

// TestStepResponseNeedsIntegrator is the contrast case: with Ki = 0 the
// same loop settles with a persistent residual error (out = Kp·(b−out) ⇒
// out = b·Kp/(1+Kp) ≠ b), which is exactly why the paper's controller
// carries an integral term.
func TestStepResponseNeedsIntegrator(t *testing.T) {
	const b = 5.0
	cfg := stepGains()
	cfg.Ki = 0
	c := New(cfg)
	outs := closedLoop(c, 600, 0.1, func(int) float64 { return b })
	final := outs[len(outs)-1]
	want := b * cfg.Kp / (1 + cfg.Kp) // fixed point of out = Kp·(b − out)
	if math.Abs(final-want) > 1e-6 {
		t.Errorf("P-only loop settled at %g, want the fixed point %g", final, want)
	}
	if math.Abs(final-b) < 0.5 {
		t.Errorf("P-only loop reached %g of %g: residual vanished, the contrast is broken", final, b)
	}
}

// TestStepResponseRespectsClamps: a bias beyond OutMax saturates the
// output at the clamp (the correction can never exceed its configured
// authority) and recovers once the bias returns in range, without windup
// sticking.
func TestStepResponseRespectsClamps(t *testing.T) {
	cfg := stepGains()
	cfg.OutMin, cfg.OutMax = -8, 8
	c := New(cfg)
	outs := closedLoop(c, 600, 0.1, func(int) float64 { return 50 })
	for i, o := range outs {
		if o > 8 || o < -8 {
			t.Fatalf("sample %d: output %g outside [-8, 8]", i, o)
		}
	}
	if final := outs[len(outs)-1]; final != 8 {
		t.Errorf("unreachable bias: output %g, want saturation at 8", final)
	}
	// Bias drops into range: anti-windup means the recovery is prompt.
	outs = closedLoop(c, 600, 0.1, func(int) float64 { return 3 })
	if final := outs[len(outs)-1]; math.Abs(final-3) > 1e-2 {
		t.Errorf("post-saturation recovery: output %g, want 3", final)
	}
}
