package pid

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultConfigMatchesPaper(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.Kp != 5e-6 || cfg.Ki != 1e-6 || cfg.Kd != 1 {
		t.Errorf("gains = (%g,%g,%g), want Table 1 values (5e-6, 1e-6, 1)", cfg.Kp, cfg.Ki, cfg.Kd)
	}
}

func TestNewPanicsOnInvertedLimits(t *testing.T) {
	cases := []Config{
		{OutMin: 1, OutMax: -1},
		{OutMin: -1, OutMax: 1, IntMin: 5, IntMax: 2},
	}
	for i, cfg := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("case %d: New did not panic", i)
				}
			}()
			New(cfg)
		}()
	}
}

func TestZeroErrorKeepsZeroOutput(t *testing.T) {
	c := New(DefaultConfig())
	for i := 0; i < 50; i++ {
		if out := c.Update(10, 10, 1); out != 0 {
			t.Fatalf("step %d: output %g for zero error, want 0", i, out)
		}
	}
}

// Positive error (jobs slower than predicted) must produce a positive
// correction so future predictions inflate (paper §4.3).
func TestPositiveErrorInflatesOutput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kd = 0 // isolate the P+I response to a step error
	c := New(cfg)
	var out float64
	for i := 0; i < 100; i++ {
		out = c.Update(10, 15, 1)
	}
	if out <= 0 {
		t.Errorf("output = %g after persistent positive error, want > 0", out)
	}
}

func TestNegativeErrorDeflatesOutput(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Kd = 0
	c := New(cfg)
	var out float64
	for i := 0; i < 100; i++ {
		out = c.Update(15, 10, 1)
	}
	if out >= 0 {
		t.Errorf("output = %g after persistent negative error, want < 0", out)
	}
}

func TestIntegralAccumulates(t *testing.T) {
	cfg := Config{Ki: 1, OutMin: -100, OutMax: 100}
	c := New(cfg)
	c.Update(0, 1, 1) // first sample: rectangular, integral = 1
	out1 := c.Output()
	c.Update(0, 1, 1) // trapezoid: + 0.5*(1+1) = 1 → integral = 2
	out2 := c.Output()
	if math.Abs(out1-1) > 1e-12 || math.Abs(out2-2) > 1e-12 {
		t.Errorf("integral outputs = %g, %g, want 1, 2", out1, out2)
	}
}

func TestOutputClamping(t *testing.T) {
	cfg := Config{Kp: 1000, OutMin: -2, OutMax: 2}
	c := New(cfg)
	if out := c.Update(0, 100, 1); out != 2 {
		t.Errorf("output = %g, want clamped to 2", out)
	}
	if out := c.Update(100, 0, 1); out != -2 {
		t.Errorf("output = %g, want clamped to -2", out)
	}
}

func TestAntiWindup(t *testing.T) {
	cfg := Config{Ki: 1, OutMin: -1, OutMax: 1}
	c := New(cfg)
	// Saturate the integrator far beyond the clamp.
	for i := 0; i < 100; i++ {
		c.Update(0, 10, 1)
	}
	// With anti-windup the integrator is clamped at 1, so a single step of
	// opposite error must immediately pull the output below the clamp.
	c.Update(10, 0, 1) // error -10, trapezoid adds 0.5*(-10+10)=0... next:
	out := c.Update(10, 0, 1)
	if out >= 1 {
		t.Errorf("output stuck at %g after error reversal; integrator wind-up not clamped", out)
	}
}

func TestDerivativeRespondsToMeasurementChange(t *testing.T) {
	cfg := Config{Kd: 1, Tau: 0, OutMin: -100, OutMax: 100}
	c := New(cfg)
	c.Update(0, 0, 1)
	out := c.Update(0, 5, 1) // measurement jumped by 5 over dt=1
	if math.Abs(out-5) > 1e-12 {
		t.Errorf("derivative output = %g, want 5", out)
	}
}

func TestDerivativeFiltering(t *testing.T) {
	sharp := New(Config{Kd: 1, Tau: 0, OutMin: -100, OutMax: 100})
	smooth := New(Config{Kd: 1, Tau: 10, OutMin: -100, OutMax: 100})
	sharp.Update(0, 0, 1)
	smooth.Update(0, 0, 1)
	o1 := sharp.Update(0, 5, 1)
	o2 := smooth.Update(0, 5, 1)
	if math.Abs(o2) >= math.Abs(o1) {
		t.Errorf("filtered derivative %g not smaller than raw %g", o2, o1)
	}
}

func TestNonPositiveDtHoldsOutput(t *testing.T) {
	c := New(DefaultConfig())
	c.Update(0, 100, 1)
	before := c.Output()
	if out := c.Update(0, -100, 0); out != before {
		t.Errorf("dt=0 changed output from %g to %g", before, out)
	}
	if out := c.Update(0, -100, -1); out != before {
		t.Errorf("dt<0 changed output from %g to %g", before, out)
	}
}

func TestReset(t *testing.T) {
	c := New(DefaultConfig())
	c.Update(0, 50, 1)
	c.Reset()
	if c.Output() != 0 {
		t.Errorf("Output after Reset = %g, want 0", c.Output())
	}
}

// Property: output is always within [OutMin, OutMax] regardless of input.
func TestPropertyOutputBounded(t *testing.T) {
	f := func(preds, obs []float64) bool {
		c := New(Config{Kp: 2, Ki: 0.5, Kd: 1, OutMin: -7, OutMax: 7})
		n := len(preds)
		if len(obs) < n {
			n = len(obs)
		}
		for i := 0; i < n; i++ {
			p, o := preds[i], obs[i]
			if math.IsNaN(p) || math.IsInf(p, 0) || math.IsNaN(o) || math.IsInf(o, 0) {
				continue
			}
			out := c.Update(p, o, 0.5)
			if out < -7 || out > 7 || math.IsNaN(out) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: the controller is deterministic — the same input sequence gives
// the same outputs after a Reset.
func TestPropertyDeterministic(t *testing.T) {
	f := func(vals []float64) bool {
		c := New(DefaultConfig())
		run := func() []float64 {
			var outs []float64
			for i, v := range vals {
				if math.IsNaN(v) || math.IsInf(v, 0) || math.Abs(v) > 1e6 {
					v = float64(i) // keep arithmetic finite: NaN != NaN would fail equality
				}
				outs = append(outs, c.Update(1, v, 1))
			}
			return outs
		}
		a := run()
		c.Reset()
		b := run()
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
