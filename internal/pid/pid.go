// Package pid implements the Proportional–Integral–Derivative controller
// Quetzal uses to mitigate E[S] prediction error (paper §4.3).
//
// The controller's error signal is (observed − predicted) job service time.
// Its output is added to future E[S] predictions: positive error ("job took
// longer than predicted, the buffer may be fuller than we thought") inflates
// future predictions, making task degradation more likely; negative error
// deflates them, letting the device keep task quality high.
//
// The implementation follows the structure of the C reference the paper
// cites [69]: band-limited derivative on measurement, trapezoidal integral,
// both integral anti-windup clamping and output clamping.
package pid

import (
	"fmt"
	"math"
)

// Config holds controller gains and limits. Gains default to the paper's
// Table 1 values (K_p = 5e-6, K_i = 1e-6, K_d = 1).
type Config struct {
	Kp, Ki, Kd float64
	// Tau is the derivative low-pass filter time constant in seconds.
	// Zero disables filtering (pure derivative).
	Tau float64
	// OutMin/OutMax clamp the controller output. Zero values mean
	// "unbounded" in that direction only when both are zero.
	OutMin, OutMax float64
	// IntMin/IntMax clamp the integrator (anti-windup). Both zero means
	// the integrator inherits the output limits.
	IntMin, IntMax float64
}

// DefaultConfig returns the paper's Table 1 gains with output limits sized
// for service-time corrections in seconds.
func DefaultConfig() Config {
	return Config{
		Kp: 5e-6, Ki: 1e-6, Kd: 1,
		Tau:    0.5,
		OutMin: -30, OutMax: 30,
	}
}

// Controller is a discrete PID controller. Construct with New.
type Controller struct {
	cfg Config

	integrator float64
	prevError  float64
	derivative float64
	out        float64
	primed     bool // true once the first update has run
}

// New returns a controller with the given configuration.
// It panics on a non-positive sample-independent configuration error
// (inverted limits).
func New(cfg Config) *Controller {
	if cfg.OutMax < cfg.OutMin {
		panic(fmt.Sprintf("pid: OutMax %g < OutMin %g", cfg.OutMax, cfg.OutMin))
	}
	if cfg.IntMin == 0 && cfg.IntMax == 0 {
		cfg.IntMin, cfg.IntMax = cfg.OutMin, cfg.OutMax
	}
	if cfg.IntMax < cfg.IntMin {
		panic(fmt.Sprintf("pid: IntMax %g < IntMin %g", cfg.IntMax, cfg.IntMin))
	}
	return &Controller{cfg: cfg}
}

// Update advances the controller by one sample. predicted and observed are
// the predicted and observed job service times in seconds; dt is the time
// since the previous update in seconds. It returns the new output.
func (c *Controller) Update(predicted, observed, dt float64) float64 {
	if dt <= 0 {
		// A zero-length step carries no new information; hold the output.
		return c.out
	}
	err := observed - predicted
	if math.IsNaN(err) || math.IsInf(err, 0) {
		// A corrupt measurement (sensor glitch, overflow) must not poison
		// the controller state; hold the output and wait for a sane sample.
		return c.out
	}

	p := c.cfg.Kp * err

	// Trapezoidal integral with anti-windup clamping.
	if c.primed {
		c.integrator += 0.5 * c.cfg.Ki * dt * (err + c.prevError)
	} else {
		c.integrator += c.cfg.Ki * dt * err
	}
	c.integrator = clamp(c.integrator, c.cfg.IntMin, c.cfg.IntMax)

	// Band-limited derivative of the *error*. Textbook PID often
	// differentiates the measurement to avoid setpoint kick, but here the
	// "setpoint" is a per-job prediction that legitimately jumps between
	// job types (a 2 s inference vs a 0.05 s packet); differentiating the
	// measurement would inject that heterogeneity as noise. The error
	// stays near zero while predictions are accurate, so its derivative
	// reacts only to genuine drift.
	if c.primed {
		raw := (err - c.prevError) / dt
		if math.IsInf(raw, 0) || math.IsNaN(raw) {
			raw = c.derivative // jump overflowed; hold the filter state
		}
		if c.cfg.Tau > 0 {
			alpha := dt / (c.cfg.Tau + dt)
			c.derivative += alpha * (raw - c.derivative)
		} else {
			c.derivative = raw
		}
	}
	d := c.cfg.Kd * c.derivative

	c.out = clamp(p+c.integrator+d, c.cfg.OutMin, c.cfg.OutMax)
	c.prevError = err
	c.primed = true
	return c.out
}

// Output returns the current controller output without updating it. The
// runtime adds this to each new E[S] prediction.
func (c *Controller) Output() float64 { return c.out }

// Reset returns the controller to its initial state.
func (c *Controller) Reset() {
	c.integrator, c.prevError, c.derivative, c.out = 0, 0, 0, 0
	c.primed = false
}

func clamp(v, lo, hi float64) float64 {
	if lo == 0 && hi == 0 {
		return v // unbounded
	}
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
