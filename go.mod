module quetzal

go 1.22
